(* Unit and property tests for the shared CC vocabulary: version total
   ordering, read/write-set helpers, and the remaining distribution
   helpers. *)

module Version = Cc_types.Version
module Rwset = Cc_types.Rwset

let test_version_ordering () =
  let a = Version.make ~ts:1 ~id:5 in
  let b = Version.make ~ts:1 ~id:6 in
  let c = Version.make ~ts:2 ~id:0 in
  Alcotest.(check bool) "ts dominates" true Version.(a < c);
  Alcotest.(check bool) "id breaks ties" true Version.(a < b);
  Alcotest.(check bool) "zero below everything" true Version.(Version.zero < a);
  Alcotest.(check bool) "equal" true (Version.equal a (Version.make ~ts:1 ~id:5));
  Alcotest.(check bool) "zero is zero" true (Version.is_zero Version.zero);
  Alcotest.(check bool) "nonzero" false (Version.is_zero a)

let test_version_pp () =
  Alcotest.(check string) "zero" "v0" (Version.to_string Version.zero);
  Alcotest.(check string) "normal" "v(3,7)"
    (Version.to_string (Version.make ~ts:3 ~id:7))

let qcheck_version_total_order =
  let ver = QCheck.(pair small_int small_int) in
  QCheck.Test.make ~name:"version compare is a total order" ~count:500
    QCheck.(triple ver ver ver)
    (fun ((t1, i1), (t2, i2), (t3, i3)) ->
      let a = Version.make ~ts:t1 ~id:i1 in
      let b = Version.make ~ts:t2 ~id:i2 in
      let c = Version.make ~ts:t3 ~id:i3 in
      let sgn x = compare x 0 in
      (* Antisymmetry and transitivity. *)
      sgn (Version.compare a b) = -sgn (Version.compare b a)
      && (not (Version.compare a b <= 0 && Version.compare b c <= 0)
          || Version.compare a c <= 0))

let test_dedup_writes_last_wins () =
  let w k v = { Rwset.key = k; w_val = v } in
  let ws = [ w "a" "1"; w "b" "2"; w "a" "3"; w "c" "4"; w "b" "5" ] in
  let deduped = Rwset.dedup_writes ws in
  Alcotest.(check int) "three keys" 3 (List.length deduped);
  Alcotest.(check (list string)) "first-write order kept" [ "a"; "b"; "c" ]
    (List.map (fun (x : Rwset.write) -> x.key) deduped);
  Alcotest.(check (option string)) "last value of a" (Some "3")
    (Option.map (fun (x : Rwset.write) -> x.w_val) (Rwset.write_of_key deduped "a"));
  Alcotest.(check (option string)) "last value of b" (Some "5")
    (Option.map (fun (x : Rwset.write) -> x.w_val) (Rwset.write_of_key deduped "b"))

let qcheck_dedup_writes_invariants =
  let writes =
    QCheck.(list_of_size Gen.(1 -- 30) (pair (int_bound 5) small_nat))
  in
  QCheck.Test.make ~name:"dedup_writes: unique keys, final values" ~count:300
    writes
    (fun pairs ->
      let ws =
        List.map
          (fun (k, v) ->
            { Rwset.key = string_of_int k; w_val = string_of_int v })
          pairs
      in
      let deduped = Rwset.dedup_writes ws in
      let keys = List.map (fun (x : Rwset.write) -> x.key) deduped in
      let unique = List.sort_uniq compare keys in
      List.length keys = List.length unique
      && List.for_all
           (fun (x : Rwset.write) ->
             (* The value is the LAST one written for that key. *)
             match Rwset.write_of_key ws x.key with
             | Some last -> String.equal last.w_val x.w_val
             | None -> false)
           deduped)

let test_read_of_key () =
  let r k v = { Rwset.key = k; r_ver = Version.zero; r_val = v } in
  let rs = [ r "a" "1"; r "b" "2" ] in
  Alcotest.(check (option string)) "found" (Some "2")
    (Option.map (fun (x : Rwset.read) -> x.r_val) (Rwset.read_of_key rs "b"));
  Alcotest.(check bool) "missing" true (Rwset.read_of_key rs "z" = None)

let test_exponential_mean () =
  let rng = Sim.Rng.create 33 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Sim.Dist.exponential rng ~mean:10.
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean close to 10" true (abs_float (mean -. 10.) < 0.5)

let test_uniform_int_bounds () =
  let rng = Sim.Rng.create 34 in
  for _ = 1 to 10_000 do
    let v = Sim.Dist.uniform_int rng ~lo:5 ~hi:9 in
    if v < 5 || v > 9 then Alcotest.fail "out of range"
  done

let test_nurand_range () =
  let rng = Sim.Rng.create 35 in
  for _ = 1 to 10_000 do
    let v = Sim.Dist.nurand rng ~a:1023 ~x:1 ~y:3000 in
    if v < 1 || v > 3000 then Alcotest.failf "nurand out of range: %d" v
  done

let test_outcome () =
  Alcotest.(check bool) "committed" true
    (Cc_types.Outcome.is_committed Cc_types.Outcome.Committed);
  Alcotest.(check bool) "aborted" false
    (Cc_types.Outcome.is_committed
       (Cc_types.Outcome.Aborted Obs.Abort_reason.User_abort))

let suites =
  [
    ( "cc_types",
      [
        Alcotest.test_case "version ordering" `Quick test_version_ordering;
        Alcotest.test_case "version pp" `Quick test_version_pp;
        QCheck_alcotest.to_alcotest qcheck_version_total_order;
        Alcotest.test_case "dedup last wins" `Quick test_dedup_writes_last_wins;
        QCheck_alcotest.to_alcotest qcheck_dedup_writes_invariants;
        Alcotest.test_case "read_of_key" `Quick test_read_of_key;
        Alcotest.test_case "outcome" `Quick test_outcome;
      ] );
    ( "sim.dist.more",
      [
        Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
        Alcotest.test_case "uniform_int bounds" `Quick test_uniform_int_bounds;
        Alcotest.test_case "nurand range" `Quick test_nurand_range;
      ] );
  ]
