(* Fault-injection tests beyond simple crashes: network partitions
   (minority partition must not block; healed partitions recover),
   larger clusters (f = 2), and a model-based test comparing Morty runs
   against a sequential reference store. *)

module Version = Cc_types.Version
module Outcome = Cc_types.Outcome

type cluster = {
  engine : Sim.Engine.t;
  net : Morty.Msg.t Simnet.Net.t;
  rng : Sim.Rng.t;
  replicas : Morty.Replica.t array;
  cfg : Morty.Config.t;
}

let make_cluster ?(cfg = Morty.Config.default) ?(seed = 55) () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create seed in
  let net = Simnet.Net.create engine (Sim.Rng.split rng) ~setup:Simnet.Latency.Reg () in
  let n = Morty.Config.n_replicas cfg in
  let replicas =
    Array.init n (fun i ->
        Morty.Replica.create ~cfg ~engine ~net ~rng:(Sim.Rng.split rng) ~index:i
          ~region:(Simnet.Latency.Az (i mod 3)) ~cores:2 ())
  in
  let peers = Array.map Morty.Replica.node replicas in
  Array.iter (fun r -> Morty.Replica.set_peers r peers) replicas;
  { engine; net; rng; replicas; cfg }

let make_client ?(az = 0) c =
  Morty.Client.create ~cfg:c.cfg ~engine:c.engine ~net:c.net
    ~rng:(Sim.Rng.split c.rng) ~region:(Simnet.Latency.Az az)
    ~replicas:(Array.map Morty.Replica.node c.replicas) ()

let load c pairs = Array.iter (fun r -> Morty.Replica.load r pairs) c.replicas

let increment c client key done_ =
  Morty.Client.begin_ client (fun ctx ->
      Morty.Client.get client ctx key (fun ctx v ->
          let n = if String.equal v "" then 0 else int_of_string v in
          let ctx = Morty.Client.put client ctx key (string_of_int (n + 1)) in
          Morty.Client.commit client ctx done_));
  ignore c

let test_minority_partition_no_block () =
  (* Partition replica 2 away from everyone; the majority {0,1} plus the
     client must still commit via the slow path. *)
  let c = make_cluster () in
  load c [ ("x", "0") ];
  let client = make_client c in
  let r2 = Morty.Replica.node c.replicas.(2) in
  let others =
    [ Morty.Replica.node c.replicas.(0); Morty.Replica.node c.replicas.(1);
      Morty.Client.node client ]
  in
  Simnet.Net.partition c.net [ r2 ] others;
  let o = ref None in
  increment c client "x" (fun out -> o := Some out);
  Sim.Engine.run_until c.engine ~limit:10_000_000;
  Alcotest.(check bool) "committed despite partition" true
    (!o = Some Outcome.Committed);
  Alcotest.(check (option string)) "value" (Some "1")
    (Morty.Replica.read_current c.replicas.(0) "x")

let test_partition_heals () =
  (* Partition the client from its closest replica only: the read
     retries against the others; after healing, later transactions use
     the fast path again. *)
  let c = make_cluster () in
  load c [ ("x", "0") ];
  let client = make_client ~az:0 c in
  let r0 = Morty.Replica.node c.replicas.(0) in
  Simnet.Net.cut_link c.net ~src:(Morty.Client.node client) ~dst:r0;
  Simnet.Net.cut_link c.net ~src:r0 ~dst:(Morty.Client.node client);
  let o1 = ref None in
  increment c client "x" (fun out -> o1 := Some out);
  Sim.Engine.run_until c.engine ~limit:10_000_000;
  Alcotest.(check bool) "committed around the cut" true
    (!o1 = Some Outcome.Committed);
  Simnet.Net.heal_all c.net;
  let o2 = ref None in
  increment c client "x" (fun out -> o2 := Some out);
  Sim.Engine.run_until c.engine ~limit:20_000_000;
  Alcotest.(check bool) "committed after heal" true (!o2 = Some Outcome.Committed);
  Alcotest.(check (option string)) "both applied" (Some "2")
    (Morty.Replica.read_current c.replicas.(0) "x")

let test_f2_cluster_commits () =
  (* f = 2: five replicas; two crashed replicas must not block. *)
  let cfg = { Morty.Config.default with f = 2 } in
  let c = make_cluster ~cfg () in
  load c [ ("x", "0") ];
  Simnet.Net.crash c.net (Morty.Replica.node c.replicas.(3));
  Simnet.Net.crash c.net (Morty.Replica.node c.replicas.(4));
  let client = make_client c in
  let o = ref None in
  increment c client "x" (fun out -> o := Some out);
  Sim.Engine.run_until c.engine ~limit:10_000_000;
  Alcotest.(check bool) "f=2 tolerates 2 crashes" true
    (!o = Some Outcome.Committed)

let test_f2_contended_counter () =
  let cfg = { Morty.Config.default with f = 2 } in
  let c = make_cluster ~cfg () in
  load c [ ("ctr", "0") ];
  let clients = List.init 5 (fun i -> make_client ~az:(i mod 3) c) in
  List.iter
    (fun client ->
      let crng = Sim.Rng.split c.rng in
      let rec loop remaining attempt =
        if remaining > 0 then
          increment c client "ctr" (function
            | Outcome.Committed -> loop (remaining - 1) 0
            | Outcome.Aborted _ ->
              ignore
                (Sim.Engine.schedule c.engine
                   ~after:(1 + Sim.Rng.int crng (8_000 * (1 lsl min attempt 8)))
                   (fun () -> loop remaining (attempt + 1))))
      in
      loop 8 0)
    clients;
  Sim.Engine.run c.engine;
  Alcotest.(check (option string)) "exact counter with f=2" (Some "40")
    (Morty.Replica.read_current c.replicas.(0) "ctr")

(* Model-based test: serially-issued random transactions must leave the
   store in exactly the state of a sequential reference interpreter. *)
let qcheck_sequential_equivalence =
  QCheck.Test.make ~name:"serial Morty run equals reference interpreter" ~count:20
    QCheck.(pair small_int (list_of_size Gen.(1 -- 25) (pair (int_bound 4) (int_bound 99))))
    (fun (seed, ops) ->
      let c = make_cluster ~seed:(seed + 1) () in
      let keys = Array.init 5 (fun i -> Printf.sprintf "k%d" i) in
      load c (Array.to_list (Array.map (fun k -> (k, "0")) keys));
      let client = make_client c in
      (* Reference: apply each op to a plain table. *)
      let model = Hashtbl.create 8 in
      Array.iter (fun k -> Hashtbl.replace model k 0) keys;
      (* Each op (k, delta) reads key k and adds delta. *)
      let rec issue = function
        | [] -> ()
        | (ki, delta) :: rest ->
          let key = keys.(ki) in
          Morty.Client.begin_ client (fun ctx ->
              Morty.Client.get client ctx key (fun ctx v ->
                  let n = if String.equal v "" then 0 else int_of_string v in
                  let ctx =
                    Morty.Client.put client ctx key (string_of_int (n + delta))
                  in
                  Morty.Client.commit client ctx (function
                    | Outcome.Committed ->
                      Hashtbl.replace model key (Hashtbl.find model key + delta);
                      issue rest
                    | Outcome.Aborted _ ->
                      (* Serial transactions never conflict. *)
                      issue rest)))
      in
      issue ops;
      Sim.Engine.run c.engine;
      Array.for_all
        (fun key ->
          Morty.Replica.read_current c.replicas.(0) key
          = Some (string_of_int (Hashtbl.find model key)))
        keys)

(* Executable Theorem 2.2: for every key, the validity windows of the
   committed writers in a real contended Morty run never overlap
   (commit events come from the recorded history). *)
let qcheck_validity_windows_never_overlap =
  QCheck.Test.make ~name:"validity windows never overlap (Theorem 2.2)" ~count:8
    QCheck.small_int
    (fun seed ->
      let c = make_cluster ~seed:(seed + 7) () in
      let history = ref [] in
      let keys = [ "hot"; "warm"; "cool" ] in
      load c (List.map (fun k -> (k, "0")) keys);
      let peers = Array.map Morty.Replica.node c.replicas in
      let clients =
        List.init 6 (fun i ->
            Morty.Client.create ~cfg:c.cfg ~engine:c.engine ~net:c.net
              ~rng:(Sim.Rng.split c.rng) ~region:(Simnet.Latency.Az (i mod 3))
              ~replicas:peers
              ~on_finish:(fun r -> history := r :: !history)
              ())
      in
      List.iter
        (fun client ->
          let crng = Sim.Rng.split c.rng in
          let rec loop remaining attempt =
            if remaining > 0 then begin
              (* Zipf-ish: mostly the hot key. *)
              let key =
                match Sim.Rng.int crng 10 with
                | 0 | 1 -> "cool"
                | 2 | 3 | 4 -> "warm"
                | _ -> "hot"
              in
              Morty.Client.begin_ client (fun ctx ->
                  Morty.Client.get client ctx key (fun ctx v ->
                      let n = if String.equal v "" then 0 else int_of_string v in
                      let ctx =
                        Morty.Client.put client ctx key (string_of_int (n + 1))
                      in
                      Morty.Client.commit client ctx (function
                        | Outcome.Committed -> loop (remaining - 1) 0
                        | Outcome.Aborted _ ->
                          ignore
                            (Sim.Engine.schedule c.engine
                               ~after:(1 + Sim.Rng.int crng (8_000 * (1 lsl min attempt 8)))
                               (fun () -> loop remaining (attempt + 1))))))
            end
          in
          loop 10 0)
        clients;
      Sim.Engine.run c.engine;
      List.for_all
        (fun key ->
          let writers =
            List.filter
              (fun (r : Morty.Client.record) ->
                r.h_committed && List.mem key r.h_writes)
              !history
            |> List.sort (fun (a : Morty.Client.record) b ->
                   Version.compare a.h_ver b.h_ver)
          in
          let events =
            List.map
              (fun (r : Morty.Client.record) ->
                {
                  Adya.Windows.ver = r.h_ver;
                  write_us = r.h_start_us;
                  commit_us = r.h_end_us;
                  read_from =
                    (match List.assoc_opt key r.h_reads with
                     | Some v -> Some v
                     | None -> None);
                })
              writers
          in
          Adya.Windows.overlapping (Adya.Windows.validity_windows events) = None)
        keys)

let suites =
  [
    ( "faults.partitions",
      [
        Alcotest.test_case "minority partition no block" `Quick
          test_minority_partition_no_block;
        Alcotest.test_case "partition heals" `Quick test_partition_heals;
      ] );
    ( "faults.f2",
      [
        Alcotest.test_case "f=2 two crashes tolerated" `Quick test_f2_cluster_commits;
        Alcotest.test_case "f=2 contended counter" `Quick test_f2_contended_counter;
      ] );
    ( "faults.model",
      [
        QCheck_alcotest.to_alcotest qcheck_sequential_equivalence;
        QCheck_alcotest.to_alcotest qcheck_validity_windows_never_overlap;
      ] );
  ]
