(* Tests for the deterministic simulation substrate: RNG, distributions,
   heap, event engine, skewed clocks. *)

open Sim

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" false (Rng.int64 a = Rng.int64 b)

let test_rng_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of range"
  done

let test_rng_int_rejects_nonpositive () =
  let r = Rng.create 7 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_bounds () =
  let r = Rng.create 9 in
  for _ = 1 to 10_000 do
    let v = Rng.float r 3.5 in
    if v < 0. || v >= 3.5 then Alcotest.fail "out of range"
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  (* After splitting, drawing from b must not change a's future stream. *)
  let a' = Rng.create 5 in
  let _ = Rng.split a' in
  ignore (Rng.int64 b);
  Alcotest.(check int64) "parent unaffected" (Rng.int64 a') (Rng.int64 a)

let test_rng_uniformity () =
  let r = Rng.create 11 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int r 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket count %d too far from %d" c expected)
    buckets

let test_shuffle_permutation () =
  let r = Rng.create 3 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_zipf_uniform_when_theta_zero () =
  let z = Dist.zipf ~n:100 ~theta:0. in
  let p0 = Dist.zipf_pmf z 0 and p99 = Dist.zipf_pmf z 99 in
  Alcotest.(check (float 1e-9)) "uniform pmf" p0 p99

let test_zipf_skew () =
  let z = Dist.zipf ~n:1000 ~theta:0.9 in
  let p0 = Dist.zipf_pmf z 0 and p999 = Dist.zipf_pmf z 999 in
  Alcotest.(check bool) "hot key much hotter" true (p0 > 100. *. p999)

let test_zipf_sample_range () =
  let z = Dist.zipf ~n:50 ~theta:0.9 in
  let r = Rng.create 13 in
  for _ = 1 to 10_000 do
    let i = Dist.zipf_sample z r in
    if i < 0 || i >= 50 then Alcotest.fail "sample out of range"
  done

let test_zipf_sample_matches_pmf () =
  let z = Dist.zipf ~n:10 ~theta:0.9 in
  let r = Rng.create 17 in
  let counts = Array.make 10 0 in
  let n = 200_000 in
  for _ = 1 to n do
    let i = Dist.zipf_sample z r in
    counts.(i) <- counts.(i) + 1
  done;
  for i = 0 to 9 do
    let expected = Dist.zipf_pmf z i *. float_of_int n in
    let got = float_of_int counts.(i) in
    if abs_float (got -. expected) > 0.05 *. expected +. 30. then
      Alcotest.failf "item %d: got %f expected %f" i got expected
  done

let test_zipf_invalid_args () =
  Alcotest.check_raises "n=0" (Invalid_argument "Dist.zipf: n must be positive")
    (fun () -> ignore (Dist.zipf ~n:0 ~theta:0.9));
  Alcotest.check_raises "theta<0"
    (Invalid_argument "Dist.zipf: theta must be non-negative") (fun () ->
      ignore (Dist.zipf ~n:10 ~theta:(-1.)))

let test_heap_orders_by_time () =
  let h = Heap.create () in
  Heap.push h ~time:30 ~seq:0 "c";
  Heap.push h ~time:10 ~seq:1 "a";
  Heap.push h ~time:20 ~seq:2 "b";
  let pop () = match Heap.pop h with Some (_, _, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ first; second; third ]

let test_heap_fifo_within_same_time () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~time:5 ~seq:i i
  done;
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, _, v) ->
      out := v :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !out)

let test_heap_random_stress () =
  let h = Heap.create () in
  let r = Rng.create 99 in
  let n = 5_000 in
  for i = 0 to n - 1 do
    Heap.push h ~time:(Rng.int r 1000) ~seq:i ()
  done;
  Alcotest.(check int) "length" n (Heap.length h);
  let prev = ref min_int in
  for _ = 1 to n do
    match Heap.pop h with
    | Some (t, _, ()) ->
      if t < !prev then Alcotest.fail "heap order violated";
      prev := t
    | None -> Alcotest.fail "heap drained early"
  done;
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_engine_runs_in_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~after:20 (fun () -> log := "b" :: !log));
  ignore (Engine.schedule e ~after:10 (fun () -> log := "a" :: !log));
  ignore (Engine.schedule e ~after:30 (fun () -> log := "c" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "clock" 30 (Engine.now e)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let hits = ref 0 in
  ignore
    (Engine.schedule e ~after:5 (fun () ->
         incr hits;
         ignore (Engine.schedule e ~after:5 (fun () -> incr hits))));
  Engine.run e;
  Alcotest.(check int) "both fired" 2 !hits;
  Alcotest.(check int) "clock" 10 (Engine.now e)

let test_engine_cancel () =
  let e = Engine.create () in
  let hit = ref false in
  let tm = Engine.schedule e ~after:5 (fun () -> hit := true) in
  Engine.cancel tm;
  Engine.run e;
  Alcotest.(check bool) "not fired" false !hit

let test_engine_pending_counts_cancelled () =
  let e = Engine.create () in
  let t1 = Engine.schedule e ~after:5 (fun () -> ()) in
  let _t2 = Engine.schedule e ~after:10 (fun () -> ()) in
  Alcotest.(check int) "two queued" 2 (Engine.pending e);
  Alcotest.(check int) "two raw" 2 (Engine.raw_pending e);
  Engine.cancel t1;
  (* [pending] reports live events: the cancelled one drops out
     immediately even though its slot stays queued as a ghost until
     drained — [raw_pending] still sees it. *)
  Alcotest.(check int) "one live after cancel" 1 (Engine.pending e);
  Alcotest.(check int) "ghost still queued" 2 (Engine.raw_pending e);
  Engine.run e;
  Alcotest.(check int) "drained" 0 (Engine.pending e);
  Alcotest.(check int) "raw drained" 0 (Engine.raw_pending e)

let test_engine_cancel_idempotent () =
  let e = Engine.create () in
  let hit = ref 0 in
  let t = Engine.schedule e ~after:5 (fun () -> incr hit) in
  Engine.cancel t;
  Engine.cancel t;
  Engine.run e;
  Alcotest.(check int) "double-cancel still cancelled" 0 !hit

let test_engine_cancel_after_fire () =
  let e = Engine.create () in
  let hit = ref 0 in
  let t = Engine.schedule e ~after:5 (fun () -> incr hit) in
  Engine.run e;
  Alcotest.(check int) "fired" 1 !hit;
  (* Cancelling a fired timer must be a harmless no-op... *)
  Engine.cancel t;
  (* ...and must not disturb later events. *)
  ignore (Engine.schedule e ~after:5 (fun () -> incr hit));
  Engine.run e;
  Alcotest.(check int) "later event unaffected" 2 !hit

let test_engine_cancel_interleaved () =
  (* Cancel every other one of a batch at the same instant; survivors
     fire in scheduling order. *)
  let e = Engine.create () in
  let log = ref [] in
  let timers =
    List.init 6 (fun i -> (i, Engine.schedule e ~after:9 (fun () -> log := i :: !log)))
  in
  List.iter (fun (i, t) -> if i mod 2 = 1 then Engine.cancel t) timers;
  Engine.run e;
  Alcotest.(check (list int)) "even survivors in order" [ 0; 2; 4 ] (List.rev !log);
  Alcotest.(check int) "queue drained" 0 (Engine.pending e)

let test_engine_run_until () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~after:10 (fun () -> log := 10 :: !log));
  ignore (Engine.schedule e ~after:20 (fun () -> log := 20 :: !log));
  Engine.run_until e ~limit:15;
  Alcotest.(check (list int)) "only first" [ 10 ] !log;
  Alcotest.(check int) "clock at limit" 15 (Engine.now e);
  Engine.run_until e ~limit:25;
  Alcotest.(check (list int)) "second fired" [ 20; 10 ] !log

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 4 do
    ignore (Engine.schedule e ~after:7 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "scheduling order" [ 0; 1; 2; 3; 4 ] (List.rev !log)

let test_engine_negative_delay_clamped () =
  let e = Engine.create () in
  let hit = ref false in
  ignore (Engine.schedule e ~after:(-5) (fun () -> hit := true));
  Engine.run e;
  Alcotest.(check bool) "fired" true !hit;
  Alcotest.(check int) "clock unchanged" 0 (Engine.now e)

let test_clock_skew_bounds () =
  let e = Engine.create () in
  let r = Rng.create 21 in
  for _ = 1 to 200 do
    let c = Clock.create e r ~max_skew:500 in
    let s = Clock.skew c in
    if s < -500 || s > 500 then Alcotest.fail "skew out of bounds"
  done

let test_clock_tracks_engine () =
  let e = Engine.create () in
  let c = Clock.perfect e in
  ignore (Engine.schedule e ~after:123 (fun () -> ()));
  Engine.run e;
  Alcotest.(check int) "tracks" 123 (Clock.read c)

let test_clock_never_negative () =
  let e = Engine.create () in
  let r = Rng.create 2 in
  let rec find_negative n =
    if n = 0 then None
    else
      let c = Clock.create e r ~max_skew:1000 in
      if Clock.skew c < 0 then Some c else find_negative (n - 1)
  in
  match find_negative 100 with
  | None -> ()
  | Some c -> Alcotest.(check int) "clamped" 0 (Clock.read c)

(* Property-based tests. *)

let qcheck_heap_sorted =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let h = Heap.create () in
      List.iteri (fun i t -> Heap.push h ~time:t ~seq:i ()) times;
      let rec drain acc =
        match Heap.pop h with Some (t, _, ()) -> drain (t :: acc) | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort compare times)

let qcheck_engine_clock_monotone =
  QCheck.Test.make ~name:"engine clock monotone under random scheduling" ~count:100
    QCheck.(list (pair (int_bound 1000) (int_bound 1000)))
    (fun events ->
      let e = Engine.create () in
      let ok = ref true in
      let last = ref 0 in
      List.iter
        (fun (d1, d2) ->
          ignore
            (Engine.schedule e ~after:d1 (fun () ->
                 if Engine.now e < !last then ok := false;
                 last := Engine.now e;
                 ignore (Engine.schedule e ~after:d2 (fun () ->
                     if Engine.now e < !last then ok := false;
                     last := Engine.now e)))))
        events;
      Engine.run e;
      !ok)

let qcheck_zipf_pmf_sums_to_one =
  QCheck.Test.make ~name:"zipf pmf sums to 1" ~count:50
    QCheck.(pair (int_range 1 500) (float_bound_inclusive 1.2))
    (fun (n, theta) ->
      let z = Dist.zipf ~n ~theta in
      let sum = ref 0. in
      for i = 0 to n - 1 do
        sum := !sum +. Dist.zipf_pmf z i
      done;
      abs_float (!sum -. 1.) < 1e-6)

let qcheck_rng_int_in_range =
  QCheck.Test.make ~name:"rng int in range" ~count:1000
    QCheck.(pair int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let suites =
  [
    ( "sim.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "int rejects non-positive" `Quick test_rng_int_rejects_nonpositive;
        Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "uniformity" `Slow test_rng_uniformity;
        Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
        QCheck_alcotest.to_alcotest qcheck_rng_int_in_range;
      ] );
    ( "sim.dist",
      [
        Alcotest.test_case "zipf theta=0 uniform" `Quick test_zipf_uniform_when_theta_zero;
        Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
        Alcotest.test_case "zipf sample range" `Quick test_zipf_sample_range;
        Alcotest.test_case "zipf sample matches pmf" `Slow test_zipf_sample_matches_pmf;
        Alcotest.test_case "zipf invalid args" `Quick test_zipf_invalid_args;
        QCheck_alcotest.to_alcotest qcheck_zipf_pmf_sums_to_one;
      ] );
    ( "sim.heap",
      [
        Alcotest.test_case "orders by time" `Quick test_heap_orders_by_time;
        Alcotest.test_case "fifo within same time" `Quick test_heap_fifo_within_same_time;
        Alcotest.test_case "random stress" `Quick test_heap_random_stress;
        QCheck_alcotest.to_alcotest qcheck_heap_sorted;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "time order" `Quick test_engine_runs_in_time_order;
        Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
        Alcotest.test_case "cancel" `Quick test_engine_cancel;
        Alcotest.test_case "pending counts cancelled" `Quick
          test_engine_pending_counts_cancelled;
        Alcotest.test_case "cancel idempotent" `Quick test_engine_cancel_idempotent;
        Alcotest.test_case "cancel after fire" `Quick test_engine_cancel_after_fire;
        Alcotest.test_case "cancel interleaved" `Quick test_engine_cancel_interleaved;
        Alcotest.test_case "run_until" `Quick test_engine_run_until;
        Alcotest.test_case "same-time fifo" `Quick test_engine_same_time_fifo;
        Alcotest.test_case "negative delay clamped" `Quick test_engine_negative_delay_clamped;
        QCheck_alcotest.to_alcotest qcheck_engine_clock_monotone;
      ] );
    ( "sim.clock",
      [
        Alcotest.test_case "skew bounds" `Quick test_clock_skew_bounds;
        Alcotest.test_case "tracks engine" `Quick test_clock_tracks_engine;
        Alcotest.test_case "never negative" `Quick test_clock_never_negative;
      ] );
  ]
