(* SmallBank integration: under heavy contention (including the
   write-skew-shaped Write-Check), committed transactions must conserve
   money exactly — final total = initial total + sum of committed
   deltas — and the recorded history must be serializable. *)

module Outcome = Cc_types.Outcome
module Sb = Workload.Smallbank

let conf = { Sb.n_customers = 20; theta = 0.9; initial_balance = 1_000 }

let run_system ~reexecution =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create 123 in
  let net = Simnet.Net.create engine (Sim.Rng.split rng) ~setup:Simnet.Latency.Reg () in
  let cfg = { Morty.Config.default with reexecution } in
  let replicas =
    Array.init 3 (fun i ->
        Morty.Replica.create ~cfg ~engine ~net ~rng:(Sim.Rng.split rng) ~index:i
          ~region:(Simnet.Latency.Az i) ~cores:4 ())
  in
  let peers = Array.map Morty.Replica.node replicas in
  Array.iter (fun r -> Morty.Replica.set_peers r peers) replicas;
  Array.iter (fun r -> Morty.Replica.load r (Sb.initial_data conf)) replicas;
  let module M = Sb.Make (Morty.Client) in
  let history = ref [] in
  let zipf = Sb.sampler conf in
  let committed_delta = ref 0 in
  List.iteri
    (fun i () ->
      let client =
        Morty.Client.create ~cfg ~engine ~net ~rng:(Sim.Rng.split rng)
          ~region:(Simnet.Latency.Az (i mod 3)) ~replicas:peers
          ~on_finish:(fun r -> history := r :: !history)
          ()
      in
      let crng = Sim.Rng.split rng in
      let rec loop remaining attempt =
        if remaining > 0 then begin
          let kind = Sb.pick_kind crng in
          (* Keep only the final execution's delta (re-execution replays
             the continuation and reports again). *)
          let delta = ref 0 in
          M.run ~on_delta:(fun d -> delta := d) conf client crng zipf kind (function
            | Outcome.Committed ->
              committed_delta := !committed_delta + !delta;
              loop (remaining - 1) 0
            | Outcome.Aborted _ ->
              ignore
                (Sim.Engine.schedule engine
                   ~after:(1 + Sim.Rng.int crng (8_000 * (1 lsl min attempt 8)))
                   (fun () -> loop remaining (attempt + 1))))
        end
      in
      loop 20 0)
    (List.init 6 (fun _ -> ()));
  Sim.Engine.run engine;
  let final_total = ref 0 in
  for c = 0 to conf.n_customers - 1 do
    List.iter
      (fun key ->
        match Morty.Replica.read_current replicas.(0) key with
        | Some v -> final_total := !final_total + int_of_string v
        | None -> Alcotest.failf "account %s missing" key)
      [ Sb.checking_key c; Sb.savings_key c ]
  done;
  let h =
    List.fold_left
      (fun h (r : Morty.Client.record) ->
        Adya.History.add h
          {
            Adya.History.ver = r.h_ver;
            reads = r.h_reads;
            writes = r.h_writes;
            committed = r.h_committed;
            start_us = r.h_start_us;
            commit_us = r.h_end_us;
          })
      Adya.History.empty !history
  in
  (!final_total, Sb.total_money conf + !committed_delta, h)

let test_money_conserved_morty () =
  let final_total, expected, h = run_system ~reexecution:true in
  Alcotest.(check int) "money conserved" expected final_total;
  match Adya.Dsg.check h with
  | Ok () -> ()
  | Error v -> Alcotest.failf "not serializable: %a" Adya.Dsg.pp_violation v

let test_money_conserved_mvtso () =
  let final_total, expected, h = run_system ~reexecution:false in
  Alcotest.(check int) "money conserved" expected final_total;
  match Adya.Dsg.check h with
  | Ok () -> ()
  | Error v -> Alcotest.failf "not serializable: %a" Adya.Dsg.pp_violation v

let test_mix_sums () =
  Alcotest.(check int) "mix" 100 (List.fold_left (fun a (_, p) -> a + p) 0 Sb.mix)

let test_initial_data () =
  let data = Sb.initial_data conf in
  Alcotest.(check int) "two accounts per customer" (2 * conf.n_customers)
    (List.length data);
  Alcotest.(check bool) "checking exists" true
    (List.mem_assoc (Sb.checking_key 0) data)

let test_partitioning_colocates_accounts () =
  let p = Sb.partition_of_key ~n_groups:4 in
  for c = 0 to 10 do
    Alcotest.(check int)
      (Printf.sprintf "customer %d accounts co-located" c)
      (p (Sb.checking_key c))
      (p (Sb.savings_key c))
  done

let suites =
  [
    ( "smallbank",
      [
        Alcotest.test_case "mix sums" `Quick test_mix_sums;
        Alcotest.test_case "initial data" `Quick test_initial_data;
        Alcotest.test_case "accounts co-located" `Quick
          test_partitioning_colocates_accounts;
        Alcotest.test_case "money conserved (morty)" `Slow test_money_conserved_morty;
        Alcotest.test_case "money conserved (mvtso)" `Slow test_money_conserved_mvtso;
      ] );
  ]
