(* Amnesia-crash fault model: kill a replica (total in-memory state
   loss), bring up a fresh incarnation on the same node, and catch it
   up from peers.  Covers the protocol-level Morty path (Recovering
   mode, f+1 donor quorum, vote service resuming after catch-up), the
   interaction with truncation, the harness-level counters and
   f-threshold guard, and the recovery-view stride fix. *)

module Version = Cc_types.Version
module Outcome = Cc_types.Outcome

type cluster = {
  engine : Sim.Engine.t;
  net : Morty.Msg.t Simnet.Net.t;
  rng : Sim.Rng.t;
  replicas : Morty.Replica.t array;
  cfg : Morty.Config.t;
}

let make_cluster ?(cfg = Morty.Config.default) ?(seed = 91) () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create seed in
  let net = Simnet.Net.create engine (Sim.Rng.split rng) ~setup:Simnet.Latency.Reg () in
  let n = Morty.Config.n_replicas cfg in
  let replicas =
    Array.init n (fun i ->
        Morty.Replica.create ~cfg ~engine ~net ~rng:(Sim.Rng.split rng) ~index:i
          ~region:(Simnet.Latency.Az (i mod 3)) ~cores:2 ())
  in
  let peers = Array.map Morty.Replica.node replicas in
  Array.iter (fun r -> Morty.Replica.set_peers r peers) replicas;
  { engine; net; rng; replicas; cfg }

let make_client ?(az = 0) ?on_finish c =
  Morty.Client.create ~cfg:c.cfg ~engine:c.engine ~net:c.net
    ~rng:(Sim.Rng.split c.rng) ~region:(Simnet.Latency.Az az)
    ~replicas:(Array.map Morty.Replica.node c.replicas) ?on_finish ()

let load c pairs = Array.iter (fun r -> Morty.Replica.load r pairs) c.replicas

(* The harness's co_kill/co_restart, inlined so the protocol can be
   exercised against a hand-built cluster. *)
let kill c i =
  Morty.Replica.stop c.replicas.(i);
  Simnet.Net.crash c.net (Morty.Replica.node c.replicas.(i))

let restart c i =
  let old = c.replicas.(i) in
  let node = Morty.Replica.node old in
  let fresh =
    Morty.Replica.create_at ~node ~cfg:c.cfg ~engine:c.engine ~net:c.net
      ~rng:(Sim.Rng.split c.rng) ~index:i ~cores:2 ()
  in
  Morty.Replica.set_peers fresh (Array.map Morty.Replica.node c.replicas);
  c.replicas.(i) <- fresh;
  Simnet.Net.recover c.net node;
  Morty.Replica.start_catchup fresh;
  fresh

let increment c client key done_ =
  Morty.Client.begin_ client (fun ctx ->
      Morty.Client.get client ctx key (fun ctx v ->
          let n = if String.equal v "" then 0 else int_of_string v in
          let ctx = Morty.Client.put client ctx key (string_of_int (n + 1)) in
          Morty.Client.commit client ctx done_));
  ignore c

(* Closed-loop increments with retry-on-abort; returns the commit
   counter (read after the engine has run). *)
let increment_loop c client key ~count =
  let committed = ref 0 in
  let crng = Sim.Rng.split c.rng in
  let rec loop remaining attempt =
    if remaining > 0 then
      increment c client key (function
        | Outcome.Committed ->
          incr committed;
          loop (remaining - 1) 0
        | Outcome.Aborted _ ->
          ignore
            (Sim.Engine.schedule c.engine
               ~after:(1 + Sim.Rng.int crng (8_000 * (1 lsl min attempt 8)))
               (fun () -> loop remaining (attempt + 1))))
  in
  loop count 0;
  committed

(* Kill a replica, commit through its absence, restart it, and verify
   the fresh incarnation catches up from peers and serves Prepare votes
   again — the end-to-end acceptance path of the amnesia model. *)
let test_kill_restart_catchup () =
  let c = make_cluster () in
  load c [ ("x", "0") ];
  let client = make_client c in
  let n1 = increment_loop c client "x" ~count:5 in
  Sim.Engine.run_until c.engine ~limit:3_000_000;
  Alcotest.(check int) "first batch committed" 5 !n1;
  kill c 2;
  Alcotest.(check bool) "killed" true (Morty.Replica.is_stopped c.replicas.(2));
  let n2 = increment_loop c client "x" ~count:5 in
  Sim.Engine.run_until c.engine ~limit:8_000_000;
  Alcotest.(check int) "second batch committed past the kill" 5 !n2;
  let fresh = restart c 2 in
  Alcotest.(check bool) "recovering right after restart" true
    (Morty.Replica.is_recovering fresh);
  Sim.Engine.run_until c.engine ~limit:10_000_000;
  Alcotest.(check bool) "caught up" false (Morty.Replica.is_recovering fresh);
  let st = Morty.Replica.stats fresh in
  Alcotest.(check int) "one catch-up round" 1 st.Morty.Replica.catchups;
  Alcotest.(check bool) "catch-up latency recorded" true
    (st.Morty.Replica.catchup_wait_us > 0);
  Alcotest.(check (option string)) "state transferred, incl. writes it missed"
    (Some "10")
    (Morty.Replica.read_current fresh "x");
  (* Donors (the two survivors) each answered the state request. *)
  let donated =
    Array.fold_left
      (fun acc r -> acc + (Morty.Replica.stats r).Morty.Replica.state_transfer_msgs)
      0 c.replicas
  in
  Alcotest.(check bool) "f+1 donors replied" true (donated >= c.cfg.Morty.Config.f + 1);
  (* The restarted replica votes again: drive more commits and watch its
     (zeroed at restart) Prepare counters move. *)
  Alcotest.(check int) "no prepares served while amnesiac" 0
    st.Morty.Replica.prepares;
  let n3 = increment_loop c client "x" ~count:5 in
  Sim.Engine.run_until c.engine ~limit:15_000_000;
  Alcotest.(check int) "third batch committed" 5 !n3;
  Alcotest.(check bool) "restarted replica serves Prepare again" true
    (st.Morty.Replica.prepares > 0);
  Alcotest.(check bool) "and votes" true (st.Morty.Replica.commit_votes > 0);
  Array.iter
    (fun r ->
      Alcotest.(check (option string)) "replicas agree" (Some "15")
        (Morty.Replica.read_current r "x"))
    c.replicas

(* Kill a replica while truncation rounds are running, restart it, and
   check the fresh incarnation adopts the survivors' watermark and
   merged snapshot; the full history must still audit serializable. *)
let test_truncation_amnesia () =
  let cfg = { Morty.Config.default with truncation_interval_us = 100_000 } in
  let c = make_cluster ~cfg ~seed:97 () in
  load c [ ("a", "0") ];
  let history = ref [] in
  let on_finish (r : Morty.Client.record) =
    history :=
      {
        Adya.History.ver = r.Morty.Client.h_ver;
        reads = r.Morty.Client.h_reads;
        writes = r.Morty.Client.h_writes;
        committed = r.Morty.Client.h_committed;
        start_us = r.Morty.Client.h_start_us;
        commit_us = r.Morty.Client.h_end_us;
      }
      :: !history
  in
  let client = make_client ~on_finish c in
  ignore (Sim.Engine.schedule_at c.engine ~at:250_000 (fun () -> kill c 1));
  ignore (Sim.Engine.schedule_at c.engine ~at:600_000 (fun () -> ignore (restart c 1)));
  let n = increment_loop c client "a" ~count:40 in
  Sim.Engine.run_until c.engine ~limit:20_000_000;
  Alcotest.(check int) "all committed across the kill" 40 !n;
  let fresh = c.replicas.(1) in
  Alcotest.(check int) "caught up once" 1
    (Morty.Replica.stats fresh).Morty.Replica.catchups;
  (match Morty.Replica.watermark fresh with
   | None -> Alcotest.fail "restarted replica adopted no watermark"
   | Some _ -> ());
  Alcotest.(check bool) "watermark matches survivors'" true
    (Morty.Replica.watermark fresh = Morty.Replica.watermark c.replicas.(0));
  Array.iter
    (fun r ->
      Alcotest.(check (option string)) "merged snapshot agrees" (Some "40")
        (Morty.Replica.read_current r "a");
      Alcotest.(check bool) "erecord GC'd on every replica" true
        (Morty.Replica.erecord_size r < 40))
    c.replicas;
  match Explore.Audit.history_of (List.rev !history) with
  | Error v ->
    Alcotest.failf "history malformed: %s" (Explore.Audit.violation_to_string v)
  | Ok h -> (
    match Adya.Dsg.check h with
    | Ok () -> ()
    | Error v ->
      Alcotest.failf "not serializable under truncation x amnesia: %a"
        Adya.Dsg.pp_violation v)

(* The harness surface: co_kill/co_restart through run_exp, counter
   plumbing into the result, and the f-threshold guard refusing a
   second concurrent amnesiac. *)
let test_harness_counters_and_guard () =
  let e =
    {
      Harness.Run.default_exp with
      e_clients = 6;
      e_cores = 2;
      e_warmup_us = 30_000;
      e_measure_us = 150_000;
      e_workload =
        Harness.Run.Ycsb
          { Workload.Ycsb.n_keys = 200; theta = 0.9; ops_per_txn = 4; read_pct = 50 };
      e_seed = 11;
    }
  in
  let faults (ops : Harness.Run.cluster_ops) =
    ignore (Sim.Engine.schedule_at ops.co_engine ~at:60_000 (fun () -> ops.co_kill 1));
    (* Second kill while replica 1 is amnesiac: must be refused (f = 1). *)
    ignore (Sim.Engine.schedule_at ops.co_engine ~at:70_000 (fun () -> ops.co_kill 2));
    ignore
      (Sim.Engine.schedule_at ops.co_engine ~at:120_000 (fun () -> ops.co_restart 1));
    (* Restarting a live replica: no-op (idempotent for the shrinker). *)
    ignore
      (Sim.Engine.schedule_at ops.co_engine ~at:130_000 (fun () -> ops.co_restart 2))
  in
  let r, h = Harness.Run.run_exp_audited ~faults e in
  (match Explore.Audit.check h r with
   | Ok () -> ()
   | Error v ->
     Alcotest.failf "audit violation: %s" (Explore.Audit.violation_to_string v));
  let rc = r.Harness.Stats.r_recovery in
  Alcotest.(check int) "one kill (guard refused the second)" 1
    rc.Harness.Stats.rc_kills;
  Alcotest.(check int) "one restart" 1 rc.Harness.Stats.rc_restarts;
  Alcotest.(check int) "one catch-up completed" 1 rc.Harness.Stats.rc_catchups;
  Alcotest.(check bool) "state transfer from a donor quorum" true
    (rc.Harness.Stats.rc_transfer_msgs >= 2);
  Alcotest.(check bool) "transfer payload accounted" true
    (rc.Harness.Stats.rc_transfer_bytes > 0);
  Alcotest.(check bool) "catch-up latency accounted" true
    (rc.Harness.Stats.rc_catchup_wait_us > 0);
  Alcotest.(check bool) "made progress" true (r.Harness.Stats.r_committed > 0)

(* run_failover takes an explicit victim and routes it through the
   cluster_ops surface. *)
let test_failover_victim () =
  let e =
    {
      Harness.Run.default_exp with
      e_clients = 4;
      e_cores = 2;
      e_warmup_us = 30_000;
      e_measure_us = 120_000;
      e_workload =
        Harness.Run.Ycsb
          { Workload.Ycsb.n_keys = 100; theta = 0.9; ops_per_txn = 2; read_pct = 50 };
      e_seed = 5;
    }
  in
  let buckets =
    Harness.Run.run_failover ~victim:0 e ~crash_at_us:50_000 ~recover_at_us:100_000
      ~bucket_us:30_000
  in
  Alcotest.(check bool) "timeline produced" true (buckets <> []);
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 buckets in
  Alcotest.(check bool) "commits despite victim-0 outage" true (total > 0)

(* The recovery-view arithmetic (satellite of the amnesia issue): the
   stride must be derived from the replica count, so concurrent
   recovery coordinators propose distinct, strictly larger views for
   any cluster size — including ones the old hard-coded stride of 1000
   broke (n_replicas > 999). *)
let test_recovery_view_stride () =
  List.iter
    (fun n ->
      List.iter
        (fun cur_view ->
          let views =
            List.init n (fun index ->
                Morty.Replica.recovery_view ~n_replicas:n ~cur_view ~index)
          in
          List.iter
            (fun v ->
              Alcotest.(check bool) "view strictly advances" true (v > cur_view))
            views;
          Alcotest.(check int) "views distinct across replicas" n
            (List.length (List.sort_uniq compare views)))
        [ 0; 1; 999; 123_456 ])
    [ 3; 5; 1500 ];
  (* Repeated recovery by the same replica keeps climbing. *)
  let v1 = Morty.Replica.recovery_view ~n_replicas:3 ~cur_view:0 ~index:2 in
  let v2 = Morty.Replica.recovery_view ~n_replicas:3 ~cur_view:v1 ~index:2 in
  Alcotest.(check bool) "re-recovery climbs" true (v2 > v1)

let suites =
  [
    ( "amnesia",
      [
        Alcotest.test_case "kill/restart/catch-up, votes resume" `Slow
          test_kill_restart_catchup;
        Alcotest.test_case "truncation x amnesia" `Slow test_truncation_amnesia;
        Alcotest.test_case "harness counters and f-guard" `Slow
          test_harness_counters_and_guard;
        Alcotest.test_case "failover victim routed via ops" `Slow
          test_failover_victim;
        Alcotest.test_case "recovery view stride" `Quick test_recovery_view_stride;
      ] );
  ]
