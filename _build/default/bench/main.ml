(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5), plus ablations of Morty's design choices and a
   Bechamel micro-benchmark suite for the core data structures.

   Usage:  dune exec bench/main.exe [-- TARGET ...]
   Targets: table1 table2 table3 fig6 fig7 fig8 fig9 headline ablation
            micro all (default: all)

   Environment: MORTY_BENCH_MEASURE_MS overrides the per-point
   measurement window (virtual milliseconds, default 1000);
   MORTY_BENCH_CSV_DIR, when set, additionally writes one CSV per
   section into that directory (for plotting). *)

open Harness

let measure_us =
  match Sys.getenv_opt "MORTY_BENCH_MEASURE_MS" with
  | Some s -> (try int_of_string s * 1000 with Failure _ -> 1_000_000)
  | None -> 1_000_000

let base_exp =
  {
    Run.default_exp with
    e_warmup_us = 300_000;
    e_measure_us = measure_us;
    e_seed = 42;
  }

let tpcc_conf = Workload.Tpcc.default_conf

let retwis_conf theta = { Workload.Retwis.n_keys = 100_000; theta }

let csv_dir = Sys.getenv_opt "MORTY_BENCH_CSV_DIR"

let csv_channel = ref None

let open_csv name =
  match csv_dir with
  | None -> ()
  | Some dir ->
    (match !csv_channel with Some oc -> close_out oc | None -> ());
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let oc = open_out (Filename.concat dir (name ^ ".csv")) in
    output_string oc (Stats.csv_header ^ "\n");
    csv_channel := Some oc

let header () = Fmt.pr "%a@." Stats.pp_result_header ()

let show r =
  Fmt.pr "%a@." Stats.pp_result r;
  match !csv_channel with
  | Some oc ->
    output_string oc (Stats.to_csv_row r ^ "\n");
    flush oc
  | None -> ()

let section title = Fmt.pr "@.=== %s ===@." title

(* ------------------------------------------------------------------ *)
(* Table 1: coordinator vote aggregation rules.                        *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: vote aggregation (f = 1, 2f+1 = 3 replicas)";
  Fmt.pr "%-40s -> %s@." "votes received" "decision";
  let show votes label =
    let agg = Morty.Vote.aggregate ~f:1 ~force:false votes in
    Fmt.pr "%-40s -> %a@." label Morty.Vote.pp_aggregate agg
  in
  show [ Commit; Commit; Commit ] "3x Commit (2f+1)";
  show [ Commit; Commit ] "2x Commit (f+1, waiting)";
  let forced = Morty.Vote.aggregate ~f:1 ~force:true [ Commit; Commit ] in
  Fmt.pr "%-40s -> %a@." "2x Commit (f+1, all in / timeout)"
    Morty.Vote.pp_aggregate forced;
  show [ Commit; Commit; Abandon_tentative ] "2x Commit + 1x Abandon-Tentative";
  show [ Abandon_final ] "1x Abandon-Final";
  show
    [ Commit; Abandon_tentative; Abandon_tentative ]
    "1x Commit + 2x Abandon-Tentative"

(* ------------------------------------------------------------------ *)
(* Table 2: cross-region RTTs.                                         *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table 2: cross-region RTTs in emulated networks (ms)";
  List.iter
    (fun (row, cols) ->
      Fmt.pr "%-12s" row;
      List.iter (fun (_, ms) -> Fmt.pr " %6d" ms) cols;
      Fmt.pr "@.")
    Simnet.Latency.table2;
  Fmt.pr
    "setups: REG = 3 AZs at 10ms RTT; CON = us-east-1/us-west-1/us-west-2; \
     GLO = us-east-1/us-west-1/eu-west-1@."

(* ------------------------------------------------------------------ *)
(* Table 3: transaction mixes.                                         *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section "Table 3a: TPC-C transaction mix";
  List.iter
    (fun (k, pct) -> Fmt.pr "  %-14s %3d%%@." (Workload.Tpcc.kind_name k) pct)
    Workload.Tpcc.mix;
  section "Table 3b: Retwis transaction mix";
  List.iter
    (fun (k, pct) -> Fmt.pr "  %-14s %3d%%@." (Workload.Retwis.kind_name k) pct)
    Workload.Retwis.mix

(* ------------------------------------------------------------------ *)
(* Figures 6 and 7: goodput vs latency curves.                         *)
(* ------------------------------------------------------------------ *)

let curve ~workload ~wl_name ~clients_grid () =
  List.iter
    (fun setup ->
      Fmt.pr "@.--- %s, %s ---@." wl_name (Simnet.Latency.setup_name setup);
      header ();
      List.iter
        (fun sys ->
          List.iter
            (fun n ->
              let e =
                {
                  base_exp with
                  e_system = sys;
                  e_setup = setup;
                  e_workload = workload;
                  e_clients = n;
                  e_label =
                    Printf.sprintf "%s %s c=%d" (Run.system_name sys)
                      (Simnet.Latency.setup_name setup) n;
                }
              in
              show (Run.run_exp e))
            clients_grid)
        Run.all_systems)
    [ Simnet.Latency.Reg; Simnet.Latency.Con; Simnet.Latency.Glo ]

let fig6 () =
  open_csv "fig6";
  section "Figure 6: TPC-C goodput vs latency (10 warehouses scaled)";
  curve ~workload:(Run.Tpcc tpcc_conf) ~wl_name:"tpcc"
    ~clients_grid:[ 32; 128; 384 ] ()

let fig7 () =
  open_csv "fig7";
  section "Figure 7: Retwis goodput vs latency (100k keys, zipf 0.9)";
  curve
    ~workload:(Run.Retwis (retwis_conf 0.9))
    ~wl_name:"retwis" ~clients_grid:[ 32; 128; 384 ] ()

(* ------------------------------------------------------------------ *)
(* Figure 8: multi-core scalability.                                   *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  open_csv "fig8";
  section "Figure 8: multi-core scalability on Retwis (REG)";
  List.iter
    (fun theta ->
      Fmt.pr "@.--- zipf theta = %.1f ---@." theta;
      header ();
      let systems =
        if theta = 0. then Run.all_systems @ [ Run.Tapir_nodist ]
        else Run.all_systems
      in
      List.iter
        (fun sys ->
          List.iter
            (fun cores ->
              let e =
                {
                  base_exp with
                  e_system = sys;
                  e_workload = Run.Retwis (retwis_conf theta);
                  e_cores = cores;
                  e_clients = 56 * cores;
                  e_label =
                    Printf.sprintf "%s cores=%d" (Run.system_name sys) cores;
                }
              in
              show (Run.run_exp e))
            [ 1; 2; 4; 8 ])
        systems)
    [ 0.0; 0.9 ]

(* ------------------------------------------------------------------ *)
(* Figure 9: varying contention.                                       *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  open_csv "fig9";
  section "Figure 9: goodput and commit rate vs Zipf coefficient (REG)";
  header ();
  List.iter
    (fun sys ->
      List.iter
        (fun theta ->
          let e =
            {
              base_exp with
              e_system = sys;
              e_workload = Run.Retwis (retwis_conf theta);
              e_clients = 192;
              e_label = Printf.sprintf "%s theta=%.1f" (Run.system_name sys) theta;
            }
          in
          show (Run.run_exp e))
        [ 0.0; 0.3; 0.6; 0.9; 1.2 ])
    Run.all_systems

(* ------------------------------------------------------------------ *)
(* Headline: the abstract's throughput ratios.                         *)
(* ------------------------------------------------------------------ *)

let peak sys workload label =
  Run.find_peak
    (fun n ->
      {
        base_exp with
        e_system = sys;
        e_workload = workload;
        e_clients = n;
        e_label = label;
      })
    ~client_counts:[ 64; 128; 256 ]

let headline () =
  open_csv "headline";
  section "Headline (paper abstract): peak TPC-C goodput ratios";
  header ();
  let results =
    List.map
      (fun sys ->
        let r = peak sys (Run.Tpcc tpcc_conf) (Run.system_name sys) in
        show r;
        (sys, r))
      Run.all_systems
  in
  match List.assoc_opt Run.Morty results with
  | Some m ->
    List.iter
      (fun (sys, r) ->
        if sys <> Run.Morty && r.Stats.r_goodput > 0. then
          Fmt.pr "Morty / %-8s = %5.1fx  (paper: %s)@." (Run.system_name sys)
            (m.Stats.r_goodput /. r.Stats.r_goodput)
            (match sys with
             | Run.Mvtso -> "1.7x"
             | Run.Tapir -> "4.4x"
             | Run.Spanner -> "7.4x"
             | Run.Morty | Run.Tapir_nodist -> "-"))
      results
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Ablations of Morty's design choices.                                *)
(* ------------------------------------------------------------------ *)

let ablation () =
  open_csv "ablation";
  section "Ablations (Retwis zipf 0.9, REG, 128 clients, 4 cores)";
  header ();
  let e label =
    {
      base_exp with
      e_workload = Run.Retwis (retwis_conf 0.9);
      e_clients = 128;
      e_label = label;
    }
  in
  let run label cfg = show (Run.run_morty_with_config (e label) cfg) in
  let d = Morty.Config.default in
  run "morty (full)" d;
  run "no re-execution (mvtso)" { d with reexecution = false };
  run "commit-time visibility" { d with eager_writes = false };
  run "re-exec cap = 1" { d with max_reexecs = 1 };
  run "no fast path" { d with always_slow_path = true };
  Fmt.pr "@.backoff policy (MVTSO baseline, same workload):@.";
  let mv = { d with Morty.Config.reexecution = false } in
  List.iter
    (fun (label, base) ->
      show
        (Run.run_morty_with_config { (e label) with e_backoff_base_us = base } mv))
    [
      ("backoff base 0 (immediate retry)", 0);
      ("backoff base 10ms", 10_000);
      ("backoff base 100ms", 100_000);
      ("backoff base 500ms", 500_000);
    ]

(* ------------------------------------------------------------------ *)
(* YCSB extension: conflict-rate sweep (read% x all four systems).     *)
(* ------------------------------------------------------------------ *)

let ycsb () =
  open_csv "ycsb";
  section "YCSB extension: goodput vs write fraction (theta 0.9, REG, 128 clients)";
  header ();
  List.iter
    (fun sys ->
      List.iter
        (fun read_pct ->
          let e =
            {
              base_exp with
              e_system = sys;
              e_workload =
                Run.Ycsb { Workload.Ycsb.default_conf with read_pct };
              e_clients = 128;
              e_label =
                Printf.sprintf "%s reads=%d%%" (Run.system_name sys) read_pct;
            }
          in
          show (Run.run_exp e))
        [ 100; 95; 50; 0 ])
    Run.all_systems

(* ------------------------------------------------------------------ *)
(* Failover timeline (extension): goodput around a replica outage.     *)
(* ------------------------------------------------------------------ *)

let failover () =
  section "Failover extension: Morty goodput around a 1s replica outage (REG)";
  let e =
    {
      base_exp with
      e_workload = Run.Retwis (retwis_conf 0.5);
      e_clients = 96;
      e_warmup_us = 0;
      e_measure_us = 4_000_000;
    }
  in
  let buckets =
    Run.run_failover e ~crash_at_us:1_000_000 ~recover_at_us:2_000_000
      ~bucket_us:250_000
  in
  Fmt.pr "time(ms)  committed/bucket   (replica down between 1000ms and 2000ms)@.";
  List.iter
    (fun (t, c) ->
      let marker = if t >= 1_000_000 && t < 2_000_000 then " <- outage" else "" in
      Fmt.pr "%8d  %6d%s@." (t / 1000) c marker)
    buckets;
  Fmt.pr
    "With 2f+1 = 3 replicas, losing one forces the slow path (Finalize)@.\
     but goodput recovers immediately after the outage heals.@."

(* ------------------------------------------------------------------ *)
(* SmallBank extension: the write-skew banking mix on all systems.     *)
(* ------------------------------------------------------------------ *)

let smallbank () =
  open_csv "smallbank";
  section "SmallBank extension (1000 customers, REG, 64 clients)";
  header ();
  List.iter
    (fun theta ->
      List.iter
        (fun sys ->
          let e =
            {
              base_exp with
              e_system = sys;
              e_workload =
                Run.Smallbank { Workload.Smallbank.default_conf with theta };
              e_clients = 64;
              e_label =
                Printf.sprintf "%s theta=%.1f" (Run.system_name sys) theta;
            }
          in
          show (Run.run_exp e))
        Run.all_systems)
    [ 0.5; 0.9 ];
  Fmt.pr
    "@.At theta=0.5 re-execution wins; at theta=0.9 SmallBank's multi-key@.\
     RMWs on a ~10%%-hot customer sit past the convoy crossover where@.\
     abort-and-retry (MVTSO) outruns chained re-execution — see@.\
     EXPERIMENTS.md, known divergence 2.@." 

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks for the core data structures.             *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "Micro-benchmarks (Bechamel; ns per run)";
  let open Bechamel in
  let test_heap =
    Test.make ~name:"event-heap push+pop x100"
      (Staged.stage (fun () ->
           let h = Sim.Heap.create () in
           for i = 0 to 99 do
             Sim.Heap.push h ~time:(i * 7919 mod 1000) ~seq:i ()
           done;
           let rec drain () =
             match Sim.Heap.pop h with Some _ -> drain () | None -> ()
           in
           drain ()))
  in
  let zipf = Sim.Dist.zipf ~n:100_000 ~theta:0.9 in
  let zrng = Sim.Rng.create 17 in
  let test_zipf =
    Test.make ~name:"zipf sample (n=100k)"
      (Staged.stage (fun () -> ignore (Sim.Dist.zipf_sample zipf zrng)))
  in
  let rng = Sim.Rng.create 3 in
  let test_rng =
    Test.make ~name:"splitmix64 next"
      (Staged.stage (fun () -> ignore (Sim.Rng.int64 rng)))
  in
  let vr = Mvstore.Vrecord.create () in
  let () =
    for i = 1 to 64 do
      Mvstore.Vrecord.commit_write vr
        ~ver:(Cc_types.Version.make ~ts:i ~id:0)
        (string_of_int i)
    done
  in
  let test_vrecord =
    Test.make ~name:"vrecord latest_before (64 versions)"
      (Staged.stage (fun () ->
           ignore
             (Mvstore.Vrecord.latest_before vr (Cc_types.Version.make ~ts:40 ~id:0))))
  in
  let test_engine =
    Test.make ~name:"engine schedule+run x100"
      (Staged.stage (fun () ->
           let e = Sim.Engine.create () in
           for i = 1 to 100 do
             ignore (Sim.Engine.schedule e ~after:i (fun () -> ()))
           done;
           Sim.Engine.run e))
  in
  let tests = [ test_heap; test_zipf; test_rng; test_vrecord; test_engine ] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
          instance results
      in
      Hashtbl.iter
        (fun name v ->
          match Analyze.OLS.estimates v with
          | Some [ est ] -> Fmt.pr "  %-40s %10.1f ns/run@." name est
          | Some _ | None -> Fmt.pr "  %-40s (no estimate)@." name)
        ols)
    tests

(* ------------------------------------------------------------------ *)

let all () =
  table1 ();
  table2 ();
  table3 ();
  headline ();
  fig6 ();
  fig7 ();
  fig8 ();
  fig9 ();
  ablation ();
  ycsb ();
  smallbank ();
  failover ();
  micro ()

let () =
  let targets =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as rest) -> rest
    | _ -> [ "all" ]
  in
  List.iter
    (fun t ->
      match t with
      | "table1" -> table1 ()
      | "table2" -> table2 ()
      | "table3" -> table3 ()
      | "fig6" -> fig6 ()
      | "fig7" -> fig7 ()
      | "fig8" -> fig8 ()
      | "fig9" -> fig9 ()
      | "headline" -> headline ()
      | "ablation" -> ablation ()
      | "ycsb" -> ycsb ()
      | "smallbank" -> smallbank ()
      | "failover" -> failover ()
      | "micro" -> micro ()
      | "all" -> all ()
      | other -> Fmt.epr "unknown bench target %S@." other)
    targets
