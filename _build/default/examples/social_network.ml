(* Social network (Retwis): the paper's high-contention workload running
   on Morty and on the MVTSO baseline side by side, printing the
   goodput / commit-rate / re-execution numbers that drive Figure 7.

     dune exec examples/social_network.exe *)

let run_system sys =
  let e =
    {
      Harness.Run.default_exp with
      e_system = sys;
      e_clients = 96;
      e_cores = 4;
      e_warmup_us = 300_000;
      e_measure_us = 1_000_000;
      e_workload =
        Harness.Run.Retwis { Workload.Retwis.n_keys = 50_000; theta = 0.9 };
      e_label = Harness.Run.system_name sys;
    }
  in
  Harness.Run.run_exp e

let () =
  Fmt.pr
    "Retwis on a simulated regional deployment: 96 closed-loop clients,@.\
     50k keys, Zipf 0.9 (a heavily contended social feed).@.@.";
  Fmt.pr "%a@." Harness.Stats.pp_result_header ();
  let morty = run_system Harness.Run.Morty in
  Fmt.pr "%a@." Harness.Stats.pp_result morty;
  let mvtso = run_system Harness.Run.Mvtso in
  Fmt.pr "%a@." Harness.Stats.pp_result mvtso;
  Fmt.pr
    "@.Morty commits %.0f%% of attempts by re-executing stale reads in place@.\
     (%.2f partial re-executions per transaction); the MVTSO baseline@.\
     aborts instead and retries after randomized exponential backoff,@.\
     committing only %.0f%% of attempts.@."
    (100. *. morty.Harness.Stats.r_commit_rate)
    morty.Harness.Stats.r_reexecs_per_txn
    (100. *. mvtso.Harness.Stats.r_commit_rate)
