examples/bank_transfer.ml: Array Cc_types Fmt List Morty Printf Sim Simnet String
