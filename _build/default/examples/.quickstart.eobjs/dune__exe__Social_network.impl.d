examples/social_network.ml: Fmt Harness Workload
