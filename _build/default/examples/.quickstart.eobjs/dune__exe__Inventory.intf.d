examples/inventory.mli:
