examples/geo.ml: Array Cc_types Fmt List Morty Sim Simnet
