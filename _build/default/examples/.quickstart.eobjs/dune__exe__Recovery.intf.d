examples/recovery.mli:
