examples/windows.ml: Adya Array Cc_types Fmt List Morty Sim Simnet
