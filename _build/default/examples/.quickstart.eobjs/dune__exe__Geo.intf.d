examples/geo.mli:
