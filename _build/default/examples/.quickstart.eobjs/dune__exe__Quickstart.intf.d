examples/quickstart.mli:
