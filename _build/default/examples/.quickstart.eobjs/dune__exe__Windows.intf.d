examples/windows.mli:
