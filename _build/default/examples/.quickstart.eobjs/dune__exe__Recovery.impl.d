examples/recovery.ml: Array Cc_types Fmt Morty Sim Simnet
