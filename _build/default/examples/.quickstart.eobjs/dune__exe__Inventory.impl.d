examples/inventory.ml: Array Cc_types Fmt Hashtbl List Morty Printf Sim Simnet Workload
