(** Final outcome of a transaction attempt, as observed by the client. *)

type t =
  | Committed
  | Aborted  (** All executions abandoned; the client may retry. *)

val pp : Format.formatter -> t -> unit

val is_committed : t -> bool
