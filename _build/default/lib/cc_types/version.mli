(** Transaction versions.

    A version [(ts, id)] is assigned at [Begin] from the coordinator's
    loosely synchronised clock [ts] plus a unique coordinator identifier
    [id] (§4.2).  Versions are totally ordered lexicographically and
    define every transaction's expected position in the serial order. *)

type t = { ts : int; id : int }

val make : ts:int -> id:int -> t

val zero : t
(** The version of the initial loading transaction [T_init]; smaller than
    every version produced at runtime. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val ( < ) : t -> t -> bool

val ( <= ) : t -> t -> bool

val is_zero : t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Map : Map.S with type key = t

module Set : Set.S with type elt = t

val hash : t -> int
