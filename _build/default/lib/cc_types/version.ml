type t = { ts : int; id : int }

let make ~ts ~id = { ts; id }

let zero = { ts = min_int; id = min_int }

let compare a b =
  let c = Int.compare a.ts b.ts in
  if c <> 0 then c else Int.compare a.id b.id

let equal a b = compare a b = 0

let ( < ) a b = compare a b < 0

let ( <= ) a b = compare a b <= 0

let is_zero v = equal v zero

let pp ppf v =
  if is_zero v then Fmt.string ppf "v0" else Fmt.pf ppf "v(%d,%d)" v.ts v.id

let to_string v = Fmt.str "%a" pp v

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

let hash v = Hashtbl.hash (v.ts, v.id)
