(** Read and write sets carried by commit-protocol messages.

    A read records which version of which key was observed and the value
    that was returned (the value is needed for Morty's dirty-read check,
    validation check 3 of §4.2).  A write records the value the execution
    intends to install. *)

type read = { key : string; r_ver : Version.t; r_val : string }

type write = { key : string; w_val : string }

type read_set = read list

type write_set = write list

val pp_read : Format.formatter -> read -> unit

val pp_write : Format.formatter -> write -> unit

val read_of_key : read_set -> string -> read option
(** First read of the given key, if any. *)

val write_of_key : write_set -> string -> write option
(** The (final) write of the given key, if any: later writes in program
    order shadow earlier ones, so lookup scans from the tail. *)

val dedup_writes : write_set -> write_set
(** Keep only the final write per key, preserving first-write order. *)
