lib/cc_types/outcome.mli: Format
