lib/cc_types/outcome.ml: Fmt
