lib/cc_types/kv_api.ml: Outcome
