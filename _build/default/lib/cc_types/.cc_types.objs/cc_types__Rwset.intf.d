lib/cc_types/rwset.mli: Format Version
