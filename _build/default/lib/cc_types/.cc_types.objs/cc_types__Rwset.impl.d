lib/cc_types/rwset.ml: Fmt Hashtbl List String Version
