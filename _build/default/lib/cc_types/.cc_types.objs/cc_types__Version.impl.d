lib/cc_types/version.ml: Fmt Hashtbl Int Map Set
