lib/cc_types/version.mli: Format Map Set
