type t = Committed | Aborted

let pp ppf = function
  | Committed -> Fmt.string ppf "committed"
  | Aborted -> Fmt.string ppf "aborted"

let is_committed = function Committed -> true | Aborted -> false
