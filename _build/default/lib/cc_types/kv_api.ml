(** The continuation-passing-style transactional API (§3.2, Figure 4b).

    All four systems in this repository (Morty, MVTSO, TAPIR, Spanner)
    expose this signature, so every workload is written once and runs
    unchanged against each concurrency-control protocol.  Control flow is
    expressed as continuations: [get] and [commit] return to the
    application through callbacks; [put] is asynchronous and returns
    immediately.

    The context [ctx] threads the transaction through the continuation
    chain.  Application state must live in the continuations' closures
    (pure-functional style): systems that support re-execution re-invoke
    a stored continuation with a fresh context and a new read value, and
    everything the application computed downstream of that read is
    recomputed from the closure — transparently to the application. *)

module type S = sig
  type t
  (** Per-application-client handle. *)

  type ctx
  (** Opaque execution context, threaded through every operation. *)

  val begin_ : t -> (ctx -> unit) -> unit
  (** Start a transaction and pass its context to the body. *)

  val begin_ro : t -> (ctx -> unit) -> unit
  (** Start a {e read-only} transaction.  Systems with a dedicated
      read-only path (Spanner's lock-free snapshot reads) exploit the
      hint; the others treat it as {!begin_}.  Writing inside a
      read-only transaction is a programming error and may be ignored. *)

  val get : t -> ctx -> string -> (ctx -> string -> unit) -> unit
  (** Asynchronously read a key; the continuation receives the value
      ([""] if the key is unwritten).  Reads observe the transaction's
      own earlier [put]s. *)

  val get_for_update : t -> ctx -> string -> (ctx -> string -> unit) -> unit
  (** Like {!get}, but hints that the transaction will later write the
      key.  Lock-based systems acquire the write lock immediately
      (Spanner's [GetForUpdate], §5 Baselines); others treat it as
      {!get}. *)

  val put : t -> ctx -> string -> string -> ctx
  (** Buffer/broadcast a write and return immediately. *)

  val commit : t -> ctx -> (Outcome.t -> unit) -> unit
  (** Run the commit protocol; the continuation receives the final
      outcome exactly once per transaction. *)

  val abort : t -> ctx -> unit
  (** Client-initiated rollback (e.g. TPC-C's New-Order 1 % user abort):
      discard the transaction without running the commit protocol.  No
      outcome continuation fires. *)
end
