type read = { key : string; r_ver : Version.t; r_val : string }

type write = { key : string; w_val : string }

type read_set = read list

type write_set = write list

let pp_read ppf (r : read) = Fmt.pf ppf "r(%s@%a)" r.key Version.pp r.r_ver

let pp_write ppf (w : write) = Fmt.pf ppf "w(%s)" w.key

let read_of_key rs key = List.find_opt (fun (r : read) -> String.equal r.key key) rs

let write_of_key ws key =
  List.fold_left
    (fun acc (w : write) -> if String.equal w.key key then Some w else acc)
    None ws

let dedup_writes ws =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun w ->
      (* Later writes shadow earlier ones. *)
      Hashtbl.replace seen w.key w.w_val)
    ws;
  let emitted = Hashtbl.create 8 in
  List.filter_map
    (fun w ->
      if Hashtbl.mem emitted w.key then None
      else begin
        Hashtbl.add emitted w.key ();
        Some { w with w_val = Hashtbl.find seen w.key }
      end)
    ws
