lib/tapir/msg.ml: Cc_types
