lib/tapir/replica.mli: Config Msg Sim Simnet
