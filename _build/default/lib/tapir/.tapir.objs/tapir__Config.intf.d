lib/tapir/config.mli:
