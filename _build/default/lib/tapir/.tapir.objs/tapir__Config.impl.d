lib/tapir/config.ml:
