lib/tapir/msg.mli: Cc_types
