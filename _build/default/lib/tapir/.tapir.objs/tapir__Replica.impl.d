lib/tapir/replica.ml: Cc_types Config Hashtbl List Msg Simnet String
