(** TAPIR deployment tunables.  Service costs are shared with the other
    systems' defaults so throughput differences come from protocol
    structure, not calibration asymmetry. *)

type t = {
  f : int;  (** [2f+1] replicas per group *)
  n_groups : int;
  read_cost_us : int;
  prepare_cost_us : int;
  finalize_cost_us : int;
  commit_cost_us : int;
  max_clock_skew_us : int;
  prepare_timeout_us : int;
}

val default : t

val n_replicas : t -> int
(** Replicas per group ([2f+1]). *)
