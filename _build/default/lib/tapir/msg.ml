module Version = Cc_types.Version

type vote = V_commit | V_abort

type t =
  | Read of { txn : Version.t; key : string; seq : int }
  | Read_reply of { txn : Version.t; key : string; w_ver : Version.t; value : string; seq : int }
  | Prepare of {
      txn : Version.t;
      reads : (string * Version.t) list;
      writes : (string * string) list;
    }
  | Prepare_reply of { txn : Version.t; group : int; vote : vote }
  | Finalize of { txn : Version.t; vote : vote }
  | Finalize_reply of { txn : Version.t; group : int; vote : vote }
  | Commit of { txn : Version.t; writes : (string * string) list }
  | Abort of { txn : Version.t }

let label = function
  | Read _ -> "read"
  | Read_reply _ -> "read_reply"
  | Prepare _ -> "prepare"
  | Prepare_reply _ -> "prepare_reply"
  | Finalize _ -> "finalize"
  | Finalize_reply _ -> "finalize_reply"
  | Commit _ -> "commit"
  | Abort _ -> "abort"
