(** TAPIR wire protocol (Zhang et al., SOSP '15), as reimplemented for the
    baseline comparison of §5.

    Reads execute at the closest replica of the key's group and return
    committed data only.  Commit integrates two-phase commit with
    inconsistent replication: [Prepare] is broadcast to every replica of
    every participant group; a group is decided on the {e fast path} when
    all [2f+1] replicas agree, otherwise a [Finalize] round makes the
    majority result durable. *)

module Version = Cc_types.Version

type vote = V_commit | V_abort

type t =
  | Read of { txn : Version.t; key : string; seq : int }
  | Read_reply of { txn : Version.t; key : string; w_ver : Version.t; value : string; seq : int }
  | Prepare of {
      txn : Version.t;  (** transaction id and proposed commit timestamp *)
      reads : (string * Version.t) list;
      writes : (string * string) list;
    }
  | Prepare_reply of { txn : Version.t; group : int; vote : vote }
  | Finalize of { txn : Version.t; vote : vote }
  | Finalize_reply of { txn : Version.t; group : int; vote : vote }
  | Commit of { txn : Version.t; writes : (string * string) list }
  | Abort of { txn : Version.t }

val label : t -> string
