lib/sim/heap.mli:
