lib/sim/clock.ml: Engine Rng
