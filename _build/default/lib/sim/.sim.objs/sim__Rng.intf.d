lib/sim/rng.mli:
