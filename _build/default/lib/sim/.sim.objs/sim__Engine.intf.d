lib/sim/engine.mli:
