lib/sim/clock.mli: Engine Rng
