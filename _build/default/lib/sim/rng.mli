(** Deterministic pseudo-random number generator (SplitMix64).

    Every experiment in this repository is seeded, so identical
    configurations reproduce identical histories, event interleavings and
    measurements.  SplitMix64 passes BigCrush, is trivially splittable, and
    needs only 64 bits of state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived from
    [seed]. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give every simulated node its own stream so that adding a node
    does not perturb the streams of existing nodes. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
