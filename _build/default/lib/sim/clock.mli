(** Loosely synchronised per-node clocks.

    MVTSO-style protocols stamp transactions with the coordinator's local
    clock (§4.1.2 of the paper); clock skew is one of the two sources of
    read misses that re-execution absorbs.  A [Clock.t] reads the engine's
    virtual time shifted by a fixed per-node offset drawn uniformly from
    [\[-max_skew, +max_skew\]]. *)

type t

val create : Engine.t -> Rng.t -> max_skew:int -> t
(** [create engine rng ~max_skew] draws a fixed offset in microseconds. *)

val perfect : Engine.t -> t
(** A clock with zero skew (used by tests and by TrueTime's oracle). *)

val read : t -> int
(** Current local time in microseconds (engine time + offset), clamped to
    be non-negative. *)

val skew : t -> int
(** The node's fixed offset (for tests and diagnostics). *)
