type zipf = {
  n : int;
  theta : float;
  (* Cumulative distribution, length n; cdf.(i) = P(X <= i). *)
  cdf : float array;
}

let zipf ~n ~theta =
  if n <= 0 then invalid_arg "Dist.zipf: n must be positive";
  if theta < 0. then invalid_arg "Dist.zipf: theta must be non-negative";
  let cdf = Array.make n 0. in
  let total = ref 0. in
  for i = 0 to n - 1 do
    total := !total +. (1. /. Float.pow (float_of_int (i + 1)) theta);
    cdf.(i) <- !total
  done;
  let z = !total in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. z
  done;
  { n; theta; cdf }

let zipf_n z = z.n
let zipf_theta z = z.theta

let zipf_sample z rng =
  let u = Rng.float rng 1.0 in
  (* Binary search for the first index with cdf >= u. *)
  let lo = ref 0 and hi = ref (z.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let zipf_pmf z i =
  if i < 0 || i >= z.n then invalid_arg "Dist.zipf_pmf: index out of range";
  if i = 0 then z.cdf.(0) else z.cdf.(i) -. z.cdf.(i - 1)

let exponential rng ~mean =
  let u = Rng.float rng 1.0 in
  -.mean *. log (1. -. u)

let uniform_int rng ~lo ~hi =
  if hi < lo then invalid_arg "Dist.uniform_int: empty range";
  lo + Rng.int rng (hi - lo + 1)

let nurand rng ~a ~x ~y =
  let r1 = uniform_int rng ~lo:0 ~hi:a in
  let r2 = uniform_int rng ~lo:x ~hi:y in
  (((r1 lor r2) + 0) mod (y - x + 1)) + x
