type t = { engine : Engine.t; offset : int }

let create engine rng ~max_skew =
  let offset = if max_skew = 0 then 0 else Rng.int rng ((2 * max_skew) + 1) - max_skew in
  { engine; offset }

let perfect engine = { engine; offset = 0 }

let read t = max 0 (Engine.now t.engine + t.offset)

let skew t = t.offset
