type event = { mutable cancelled : bool; action : unit -> unit }

type timer = event

type t = {
  queue : event Heap.t;
  mutable clock : int;
  mutable seq : int;
  mutable fired : int;
}

let create () = { queue = Heap.create (); clock = 0; seq = 0; fired = 0 }

let now t = t.clock

let schedule_at t ~at f =
  let at = max at t.clock in
  let e = { cancelled = false; action = f } in
  Heap.push t.queue ~time:at ~seq:t.seq e;
  t.seq <- t.seq + 1;
  e

let schedule t ~after f = schedule_at t ~at:(t.clock + max 0 after) f

let cancel e = e.cancelled <- true

let pending t = Heap.length t.queue

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, _seq, e) ->
    t.clock <- max t.clock time;
    if not e.cancelled then begin
      t.fired <- t.fired + 1;
      e.action ()
    end;
    true

let run t =
  while step t do
    ()
  done

let run_until t ~limit =
  let continue = ref true in
  while !continue do
    match Heap.peek_time t.queue with
    | Some time when time <= limit -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  t.clock <- max t.clock limit

let events_fired t = t.fired
