(** Random distributions used by workload generators.

    The Zipfian sampler matches the access pattern of the Retwis
    experiments in the paper (§5.1.2, §5.3): keys are drawn from
    [\[0, n)] with probability proportional to [1 / (rank+1)^theta]. *)

type zipf
(** Precomputed Zipfian sampler over [n] items. *)

val zipf : n:int -> theta:float -> zipf
(** [zipf ~n ~theta] precomputes a sampler.  [theta = 0.] degenerates to
    the uniform distribution.  Raises [Invalid_argument] if [n <= 0] or
    [theta < 0.]. *)

val zipf_sample : zipf -> Rng.t -> int
(** Draw an item index in [\[0, n)]; index 0 is the hottest item. *)

val zipf_n : zipf -> int
(** Number of items the sampler was built for. *)

val zipf_theta : zipf -> float
(** Skew parameter the sampler was built with. *)

val zipf_pmf : zipf -> int -> float
(** [zipf_pmf z i] is the probability of drawing item [i]. *)

val exponential : Rng.t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val uniform_int : Rng.t -> lo:int -> hi:int -> int
(** Uniform integer in the inclusive range [\[lo, hi\]]. *)

val nurand : Rng.t -> a:int -> x:int -> y:int -> int
(** TPC-C NURand(A, x, y) non-uniform random function (clause 2.1.6),
    with C fixed to 0 for reproducibility. *)
