type t = Commit | Abandon_tentative | Abandon_final

let pp ppf = function
  | Commit -> Fmt.string ppf "commit"
  | Abandon_tentative -> Fmt.string ppf "abandon-tentative"
  | Abandon_final -> Fmt.string ppf "abandon-final"

let equal a b =
  match (a, b) with
  | Commit, Commit
  | Abandon_tentative, Abandon_tentative
  | Abandon_final, Abandon_final -> true
  | (Commit | Abandon_tentative | Abandon_final), _ -> false

type aggregate = Commit_fast | Commit_slow | Abandon_fast | Abandon_slow | Undecided

let pp_aggregate ppf = function
  | Commit_fast -> Fmt.string ppf "commit-fast"
  | Commit_slow -> Fmt.string ppf "commit-slow"
  | Abandon_fast -> Fmt.string ppf "abandon-fast"
  | Abandon_slow -> Fmt.string ppf "abandon-slow"
  | Undecided -> Fmt.string ppf "undecided"

let aggregate ~f ~force votes =
  let n = (2 * f) + 1 in
  let count v = List.length (List.filter (equal v) votes) in
  let commits = count Commit in
  let finals = count Abandon_final in
  let replies = List.length votes in
  if finals >= 1 then Abandon_fast
  else if commits = n then Commit_fast
  else if replies = n || (force && replies >= f + 1) then
    if commits >= f + 1 then Commit_slow else Abandon_slow
  else Undecided
