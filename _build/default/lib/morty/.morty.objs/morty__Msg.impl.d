lib/morty/msg.ml: Cc_types Decision Vote
