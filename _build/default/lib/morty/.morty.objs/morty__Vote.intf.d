lib/morty/vote.mli: Format
