lib/morty/client.ml: Array Cc_types Config Decision Hashtbl List Logs Msg Sim Simnet String Vote
