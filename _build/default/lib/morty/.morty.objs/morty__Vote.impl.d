lib/morty/vote.ml: Fmt List
