lib/morty/decision.mli: Format
