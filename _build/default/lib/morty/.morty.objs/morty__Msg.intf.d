lib/morty/msg.mli: Cc_types Decision Vote
