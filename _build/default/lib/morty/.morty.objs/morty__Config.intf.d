lib/morty/config.mli:
