lib/morty/replica.ml: Array Cc_types Config Decision Hashtbl List Logs Msg Mvstore Sim Simnet String Vote
