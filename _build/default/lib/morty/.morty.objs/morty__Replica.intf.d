lib/morty/replica.mli: Cc_types Config Msg Sim Simnet
