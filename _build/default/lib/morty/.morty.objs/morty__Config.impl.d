lib/morty/config.ml:
