lib/morty/client.mli: Cc_types Config Msg Sim Simnet
