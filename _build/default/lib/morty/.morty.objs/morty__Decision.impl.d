lib/morty/decision.ml: Fmt
