(** Per-execution decisions (§4.2, "Abort vs. Abandon").

    Each transaction {e execution} reaches [Commit] or [Abandon]; the
    transaction commits iff one of its executions commits, and aborts
    only when all executions are abandoned (signalled by the [abort?]
    flag on Decide messages). *)

type t = Commit | Abandon

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
