type t = Commit | Abandon

let pp ppf = function
  | Commit -> Fmt.string ppf "commit"
  | Abandon -> Fmt.string ppf "abandon"

let equal a b =
  match (a, b) with
  | Commit, Commit | Abandon, Abandon -> true
  | (Commit | Abandon), _ -> false
