(** Replica validation votes and coordinator-side aggregation (Table 1).

    A replica votes {!Commit} when an execution passes all four
    serializability checks, {!Abandon_tentative} when it conflicts only
    with uncommitted state (a later execution might still commit after
    re-execution), and {!Abandon_final} when the conflict is with
    committed state, a dirty read, or truncated metadata — no execution
    with this read set can ever commit. *)

type t = Commit | Abandon_tentative | Abandon_final

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

(** Coordinator-side aggregation per Table 1:
    - 2f+1 Commit votes: decision Commit, durable (skip Finalize);
    - f+1..2f Commit votes: decision Commit, needs Finalize;
    - >= 1 Abandon-Final vote: decision Abandon, durable;
    - otherwise (some Abandon-Tentative, not enough Commits): decision
      Abandon, needs Finalize. *)
type aggregate =
  | Commit_fast
  | Commit_slow
  | Abandon_fast
  | Abandon_slow
  | Undecided  (** keep waiting for more replies *)

val pp_aggregate : Format.formatter -> aggregate -> unit

val aggregate : f:int -> force:bool -> t list -> aggregate
(** [aggregate ~f ~force votes] combines the votes received so far from
    distinct replicas (at most [2f+1]).  With [force = false] the result
    is [Undecided] unless the outcome can no longer change; with [force =
    true] (timeout expired, at least [f+1] replies present) the rules are
    applied to the replies at hand. *)
