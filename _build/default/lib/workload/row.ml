type t = string array

let encode t = String.concat "|" (Array.to_list t)

let decode s = if String.equal s "" then [||] else Array.of_list (String.split_on_char '|' s)

let is_absent s = String.equal s ""

let get t i = if i < Array.length t then t.(i) else ""

let get_int t i = match int_of_string_opt (get t i) with Some n -> n | None -> 0

let set t i v =
  let t' = Array.copy t in
  t'.(i) <- v;
  t'

let set_int t i v = set t i (string_of_int v)

let add_int t i delta = set_int t i (get_int t i + delta)
