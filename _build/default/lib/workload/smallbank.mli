(** SmallBank workload (Alomari et al., ICDE '08) — an extension beyond
    the paper's two benchmarks, widely used to evaluate serializable
    systems (e.g. by Basil, the paper's BFT sibling).

    Each customer has a checking and a savings account.  Six transaction
    types exercise classic anomaly-prone patterns (write skew between the
    two accounts, read-modify-write hotspots):

    - Balance (15 %): read both accounts (read-only);
    - Deposit-Checking (15 %): RMW checking;
    - Transact-Savings (15 %): RMW savings;
    - Amalgamate (15 %): zero both accounts of customer A, add to B;
    - Write-Check (25 %): read both, debit checking (write skew shape);
    - Send-Payment (15 %): move money between two customers' checking.

    Account choice is Zipfian, so a handful of celebrity customers form
    the hotspot.  Money is conserved by every committed transaction —
    the integration tests check the global balance invariant. *)

type conf = { n_customers : int; theta : float; initial_balance : int }

val default_conf : conf

type kind =
  | Balance
  | Deposit_checking
  | Transact_savings
  | Amalgamate
  | Write_check
  | Send_payment

val kind_name : kind -> string

val mix : (kind * int) list

val pick_kind : Sim.Rng.t -> kind

val is_read_only : kind -> bool

val checking_key : int -> string

val savings_key : int -> string

val initial_data : conf -> (string * string) list

val total_money : conf -> int
(** Initial total: the invariant is [final total = initial total + sum of
    committed deltas], where each transaction's money delta is reported
    through [on_delta] (deposits and checks move money in/out of the
    bank; transfers and amalgamations are internal). *)

val sampler : conf -> Sim.Dist.zipf

val partition_of_key : n_groups:int -> string -> int
(** Both accounts of a customer live in the same group. *)

module Make (C : Cc_types.Kv_api.S) : sig
  val run :
    ?on_delta:(int -> unit) ->
    conf ->
    C.t ->
    Sim.Rng.t ->
    Sim.Dist.zipf ->
    kind ->
    (Cc_types.Outcome.t -> unit) ->
    unit
  (** [on_delta] reports the transaction's net money movement; systems
      that re-execute invoke it again for the replayed execution, so the
      caller should keep only the most recent value and apply it when the
      outcome is [Committed]. *)
end
