type conf = { n_keys : int; theta : float; ops_per_txn : int; read_pct : int }

let default_conf = { n_keys = 100_000; theta = 0.9; ops_per_txn = 4; read_pct = 50 }

let workload_a = default_conf

let workload_b = { default_conf with read_pct = 95 }

let workload_c = { default_conf with read_pct = 100 }

let workload_f = { default_conf with read_pct = 0 }

let key i = Printf.sprintf "y:%d" i

let initial_data conf = List.init conf.n_keys (fun i -> (key i, "0"))

let sampler conf = Sim.Dist.zipf ~n:conf.n_keys ~theta:conf.theta

let partition_of_key ~n_groups k = Hashtbl.hash k mod n_groups

module Make (C : Cc_types.Kv_api.S) = struct
  type op = Read of string | Update of string

  let plan conf rng zipf =
    let seen = Hashtbl.create 8 in
    let rec fresh_key guard =
      let i = Sim.Dist.zipf_sample zipf rng in
      if Hashtbl.mem seen i && guard > 0 then fresh_key (guard - 1)
      else begin
        Hashtbl.replace seen i ();
        key i
      end
    in
    List.init conf.ops_per_txn (fun _ ->
        let k = fresh_key 100 in
        if Sim.Rng.int rng 100 < conf.read_pct then Read k else Update k)

  let run conf client rng zipf done_ =
    let ops = plan conf rng zipf in
    let read_only = List.for_all (function Read _ -> true | Update _ -> false) ops in
    let begin_ = if read_only then C.begin_ro else C.begin_ in
    let once = ref false in
    let done_ o =
      if not !once then begin
        once := true;
        done_ o
      end
    in
    begin_ client (fun ctx ->
        let rec go ctx = function
          | [] -> C.commit client ctx done_
          | Read k :: rest -> C.get client ctx k (fun ctx _ -> go ctx rest)
          | Update k :: rest ->
            C.get_for_update client ctx k (fun ctx v ->
                let n = match int_of_string_opt v with Some n -> n | None -> 0 in
                go (C.put client ctx k (string_of_int (n + 1))) rest)
        in
        go ctx ops)
end
