type conf = { n_keys : int; theta : float }

let default_conf = { n_keys = 100_000; theta = 0.9 }

type kind = Add_user | Follow | Post_tweet | Load_timeline

let kind_name = function
  | Add_user -> "add-user"
  | Follow -> "follow"
  | Post_tweet -> "post-tweet"
  | Load_timeline -> "load-timeline"

let mix = [ (Add_user, 5); (Follow, 15); (Post_tweet, 30); (Load_timeline, 50) ]

let pick_kind rng =
  let r = Sim.Rng.int rng 100 in
  let rec go acc = function
    | [] -> Load_timeline
    | (k, pct) :: rest -> if r < acc + pct then k else go (acc + pct) rest
  in
  go 0 mix

let is_read_only = function
  | Load_timeline -> true
  | Add_user | Follow | Post_tweet -> false

let key i = Printf.sprintf "key:%d" i

let initial_data conf = List.init conf.n_keys (fun i -> (key i, "0"))

let sampler conf = Sim.Dist.zipf ~n:conf.n_keys ~theta:conf.theta

let partition_of_key ~n_groups k = Hashtbl.hash k mod n_groups

module Make (C : Cc_types.Kv_api.S) = struct
  let rec each ctx xs f k =
    match xs with
    | [] -> k ctx
    | x :: rest -> f ctx x (fun ctx -> each ctx rest f k)

  (* Distinct Zipf-distributed keys. *)
  let pick_keys rng zipf n =
    let seen = Hashtbl.create 8 in
    let rec go acc remaining guard =
      if remaining = 0 || guard = 0 then acc
      else
        let i = Sim.Dist.zipf_sample zipf rng in
        if Hashtbl.mem seen i then go acc remaining (guard - 1)
        else begin
          Hashtbl.add seen i ();
          go (key i :: acc) (remaining - 1) (guard - 1)
        end
    in
    go [] n (n * 100)

  let incr_value v = string_of_int ((match int_of_string_opt v with Some n -> n | None -> 0) + 1)

  (* [rmws] read–modify–writes followed by [blind] blind writes. *)
  let read_modify_write client rng zipf ~rmws ~blind done_ =
    let rmw_keys = pick_keys rng zipf rmws in
    let blind_keys = pick_keys rng zipf blind in
    C.begin_ client (fun ctx ->
        each ctx rmw_keys
          (fun ctx k cont ->
            C.get_for_update client ctx k (fun ctx v ->
                cont (C.put client ctx k (incr_value v))))
          (fun ctx ->
            let ctx =
              List.fold_left (fun ctx k -> C.put client ctx k "1") ctx blind_keys
            in
            C.commit client ctx done_))

  let load_timeline client rng zipf done_ =
    let n = 1 + Sim.Rng.int rng 10 in
    let keys = pick_keys rng zipf n in
    C.begin_ro client (fun ctx ->
        each ctx keys
          (fun ctx k cont -> C.get client ctx k (fun ctx _ -> cont ctx))
          (fun ctx -> C.commit client ctx done_))

  let run client rng zipf kind done_ =
    let once = ref false in
    let done_ o =
      if not !once then begin
        once := true;
        done_ o
      end
    in
    match kind with
    | Add_user -> read_modify_write client rng zipf ~rmws:1 ~blind:1 done_
    | Follow -> read_modify_write client rng zipf ~rmws:2 ~blind:0 done_
    | Post_tweet -> read_modify_write client rng zipf ~rmws:3 ~blind:2 done_
    | Load_timeline -> load_timeline client rng zipf done_
end
