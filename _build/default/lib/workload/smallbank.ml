type conf = { n_customers : int; theta : float; initial_balance : int }

let default_conf = { n_customers = 1_000; theta = 0.9; initial_balance = 10_000 }

type kind =
  | Balance
  | Deposit_checking
  | Transact_savings
  | Amalgamate
  | Write_check
  | Send_payment

let kind_name = function
  | Balance -> "balance"
  | Deposit_checking -> "deposit-checking"
  | Transact_savings -> "transact-savings"
  | Amalgamate -> "amalgamate"
  | Write_check -> "write-check"
  | Send_payment -> "send-payment"

let mix =
  [
    (Balance, 15); (Deposit_checking, 15); (Transact_savings, 15);
    (Amalgamate, 15); (Write_check, 25); (Send_payment, 15);
  ]

let pick_kind rng =
  let r = Sim.Rng.int rng 100 in
  let rec go acc = function
    | [] -> Balance
    | (k, pct) :: rest -> if r < acc + pct then k else go (acc + pct) rest
  in
  go 0 mix

let is_read_only = function
  | Balance -> true
  | Deposit_checking | Transact_savings | Amalgamate | Write_check | Send_payment ->
    false

let checking_key c = Printf.sprintf "chk:%d" c

let savings_key c = Printf.sprintf "sav:%d" c

let initial_data conf =
  List.concat_map
    (fun c ->
      [
        (checking_key c, string_of_int conf.initial_balance);
        (savings_key c, string_of_int conf.initial_balance);
      ])
    (List.init conf.n_customers (fun i -> i))

let total_money conf = 2 * conf.n_customers * conf.initial_balance

let sampler conf = Sim.Dist.zipf ~n:conf.n_customers ~theta:conf.theta

let partition_of_key ~n_groups key =
  match String.split_on_char ':' key with
  | [ _; c ] -> (match int_of_string_opt c with Some c -> c mod n_groups | None -> 0)
  | _ -> 0

module Make (C : Cc_types.Kv_api.S) = struct
  let int_of v = match int_of_string_opt v with Some n -> n | None -> 0

  let two_customers rng zipf =
    let a = Sim.Dist.zipf_sample zipf rng in
    let rec pick_b guard =
      let b = Sim.Dist.zipf_sample zipf rng in
      if b <> a || guard = 0 then b else pick_b (guard - 1)
    in
    (a, pick_b 100)

  let balance client zipf rng done_ =
    let c = Sim.Dist.zipf_sample zipf rng in
    C.begin_ro client (fun ctx ->
        C.get client ctx (checking_key c) (fun ctx _ ->
            C.get client ctx (savings_key c) (fun ctx _ ->
                C.commit client ctx done_)))

  let deposit_checking client zipf rng ~on_delta done_ =
    let c = Sim.Dist.zipf_sample zipf rng in
    let amount = 1 + Sim.Rng.int rng 100 in
    C.begin_ client (fun ctx ->
        C.get_for_update client ctx (checking_key c) (fun ctx v ->
            on_delta amount;
            let ctx =
              C.put client ctx (checking_key c) (string_of_int (int_of v + amount))
            in
            C.commit client ctx done_))

  let transact_savings client zipf rng ~on_delta done_ =
    let c = Sim.Dist.zipf_sample zipf rng in
    let amount = 1 + Sim.Rng.int rng 100 in
    C.begin_ client (fun ctx ->
        C.get_for_update client ctx (savings_key c) (fun ctx v ->
            (* Withdraw when funds allow, else deposit. *)
            let delta = if int_of v >= amount then -amount else amount in
            on_delta delta;
            let ctx =
              C.put client ctx (savings_key c) (string_of_int (int_of v + delta))
            in
            C.commit client ctx done_))

  let amalgamate client zipf rng done_ =
    let a, b = two_customers rng zipf in
    C.begin_ client (fun ctx ->
        C.get_for_update client ctx (savings_key a) (fun ctx sa ->
            C.get_for_update client ctx (checking_key a) (fun ctx ca ->
                C.get_for_update client ctx (checking_key b) (fun ctx cb ->
                    let total = int_of sa + int_of ca in
                    let ctx = C.put client ctx (savings_key a) "0" in
                    let ctx = C.put client ctx (checking_key a) "0" in
                    let ctx =
                      C.put client ctx (checking_key b)
                        (string_of_int (int_of cb + total))
                    in
                    C.commit client ctx done_))))

  let write_check client zipf rng ~on_delta done_ =
    let c = Sim.Dist.zipf_sample zipf rng in
    let amount = 1 + Sim.Rng.int rng 100 in
    C.begin_ client (fun ctx ->
        C.get client ctx (savings_key c) (fun ctx sv ->
            C.get_for_update client ctx (checking_key c) (fun ctx cv ->
                (* The classic write-skew shape: the overdraft penalty
                   depends on the *sum* of both balances but only the
                   checking account is written. *)
                let penalty = if int_of sv + int_of cv < amount then 1 else 0 in
                let debit = amount + penalty in
                on_delta (-debit);
                let ctx =
                  C.put client ctx (checking_key c)
                    (string_of_int (int_of cv - debit))
                in
                C.commit client ctx done_)))

  let send_payment client zipf rng done_ =
    let a, b = two_customers rng zipf in
    let amount = 1 + Sim.Rng.int rng 50 in
    C.begin_ client (fun ctx ->
        C.get_for_update client ctx (checking_key a) (fun ctx va ->
            C.get_for_update client ctx (checking_key b) (fun ctx vb ->
                if int_of va < amount then
                  (* Insufficient funds: commit without effect. *)
                  C.commit client ctx done_
                else
                  let ctx =
                    C.put client ctx (checking_key a)
                      (string_of_int (int_of va - amount))
                  in
                  let ctx =
                    C.put client ctx (checking_key b)
                      (string_of_int (int_of vb + amount))
                  in
                  C.commit client ctx done_)))

  let run ?(on_delta = fun (_ : int) -> ()) conf client rng zipf kind done_ =
    ignore conf;
    let once = ref false in
    let done_ o =
      if not !once then begin
        once := true;
        done_ o
      end
    in
    match kind with
    | Balance -> balance client zipf rng done_
    | Deposit_checking -> deposit_checking client zipf rng ~on_delta done_
    | Transact_savings -> transact_savings client zipf rng ~on_delta done_
    | Amalgamate -> amalgamate client zipf rng done_
    | Write_check -> write_check client zipf rng ~on_delta done_
    | Send_payment -> send_payment client zipf rng done_
end
