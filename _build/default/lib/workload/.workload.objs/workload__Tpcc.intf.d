lib/workload/tpcc.mli: Cc_types Sim
