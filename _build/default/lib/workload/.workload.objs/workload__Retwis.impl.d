lib/workload/retwis.ml: Cc_types Hashtbl List Printf Sim
