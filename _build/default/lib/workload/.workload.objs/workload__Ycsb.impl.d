lib/workload/ycsb.ml: Cc_types Hashtbl List Printf Sim
