lib/workload/ycsb.mli: Cc_types Sim
