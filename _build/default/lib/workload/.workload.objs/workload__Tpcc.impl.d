lib/workload/tpcc.ml: Array Cc_types Hashtbl List Printf Row Sim String
