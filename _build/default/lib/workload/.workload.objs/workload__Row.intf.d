lib/workload/row.mli:
