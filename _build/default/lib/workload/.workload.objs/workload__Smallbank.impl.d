lib/workload/smallbank.ml: Cc_types List Printf Sim String
