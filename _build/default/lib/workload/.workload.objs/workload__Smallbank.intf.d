lib/workload/smallbank.mli: Cc_types Sim
