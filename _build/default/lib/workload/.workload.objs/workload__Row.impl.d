lib/workload/row.ml: Array String
