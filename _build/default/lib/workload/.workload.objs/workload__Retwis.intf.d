lib/workload/retwis.mli: Cc_types Sim
