(** TPC-C workload (Table 3a) in continuation-passing style.

    Implements the five transaction types over nine tables plus the two
    materialised secondary indices the paper describes (orders by
    customer, oldest undelivered order per district), with the standard
    mix: New-Order 44 %, Payment 44 %, Delivery 4 %, Order-Status 4 %,
    Stock-Level 4 %.  Payment updates the warehouse year-to-date total —
    the contention hotspot §2.1.1 analyses.

    Scale is configurable; contention ratios follow the spec (Payment
    picks a remote warehouse 15 % of the time, New-Order a remote supply
    warehouse per item 1 % of the time). *)

type conf = {
  n_warehouses : int;
  districts_per_warehouse : int;
  customers_per_district : int;
  n_items : int;
  initial_orders_per_district : int;
  max_items_per_order : int;
}

val default_conf : conf
(** Scaled-down defaults (see DESIGN.md): 10 districts, 30 customers per
    district, 100 items, 10 initial orders per district. *)

val conf_with_warehouses : int -> conf

type kind = New_order | Payment | Delivery | Order_status | Stock_level

val kind_name : kind -> string

val mix : (kind * int) list
(** Percentage mix of Table 3a. *)

val pick_kind : Sim.Rng.t -> kind

val is_read_only : kind -> bool

val initial_data : conf -> (string * string) list
(** Rows to load into every replica before the run. *)

val partition_of_key : home_group:int -> n_groups:int -> string -> int
(** Partition by warehouse id; the read-only items table is treated as
    replicated by mapping it to the client's home group (as the paper
    does). *)

(** The workload instantiated over any of the four systems. *)
module Make (C : Cc_types.Kv_api.S) : sig
  val run :
    conf ->
    C.t ->
    Sim.Rng.t ->
    home_w:int ->
    kind ->
    (Cc_types.Outcome.t -> unit) ->
    unit
  (** Execute one transaction of the given kind against the client;
      the continuation receives the outcome (exactly once). *)
end
