(** YCSB-style parametric microbenchmark (an extension beyond the
    paper's two workloads).

    Each transaction performs [ops_per_txn] operations on Zipf-chosen
    keys; each operation is a read with probability [read_pct]% and a
    read–modify–write otherwise.  Sweeping [read_pct] and [theta] maps
    the conflict-rate space directly — the ablation bench uses it to
    show where re-execution pays off.

    Standard mixes: A = 50 % reads, B = 95 %, C = 100 % (read-only),
    F = 0 % (all read–modify–write). *)

type conf = {
  n_keys : int;
  theta : float;
  ops_per_txn : int;
  read_pct : int;  (** 0..100 *)
}

val default_conf : conf
(** Workload A: 4 ops, 50 % reads, θ = 0.9, 100 k keys. *)

val workload_a : conf

val workload_b : conf

val workload_c : conf

val workload_f : conf

val initial_data : conf -> (string * string) list

val sampler : conf -> Sim.Dist.zipf

val key : int -> string

val partition_of_key : n_groups:int -> string -> int

module Make (C : Cc_types.Kv_api.S) : sig
  val run :
    conf ->
    C.t ->
    Sim.Rng.t ->
    Sim.Dist.zipf ->
    (Cc_types.Outcome.t -> unit) ->
    unit
  (** One transaction; read-only instances use the [begin_ro] path. *)
end
