(** Tiny row codec: table rows are stored as ['|']-separated field
    lists inside the key-value store.  Fields must not contain ['|'];
    the TPC-C generator only produces alphanumeric fields. *)

type t = string array

val encode : t -> string

val decode : string -> t
(** [decode ""] is the empty row (absent record). *)

val is_absent : string -> bool

val get : t -> int -> string

val get_int : t -> int -> int

val set : t -> int -> string -> t
(** Functional update (copies). *)

val set_int : t -> int -> int -> t

val add_int : t -> int -> int -> t
(** [add_int row i delta] increments an integer field. *)
