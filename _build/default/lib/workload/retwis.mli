(** Retwis workload (Table 3b): a social-network benchmark with short
    read-write transactions and configurable contention.

    As in TAPIR's benchmark (which the paper reuses), each transaction
    touches keys drawn from a Zipfian distribution over the keyspace:

    - Add-User (5 %): 1 read–modify–write + 1 blind write;
    - Follow/Unfollow (15 %): 2 read–modify–writes;
    - Post-Tweet (30 %): 3 read–modify-writes + 2 blind writes;
    - Load-Timeline (50 %): 1–10 reads, read-only.

    Every read–modify–write increments an integer counter, so any lost
    update is detectable by the consistency checks in the tests. *)

type conf = {
  n_keys : int;
  theta : float;  (** Zipf parameter; 0.9 in §5.1.2, swept in §5.3 *)
}

val default_conf : conf

type kind = Add_user | Follow | Post_tweet | Load_timeline

val kind_name : kind -> string

val mix : (kind * int) list

val pick_kind : Sim.Rng.t -> kind

val is_read_only : kind -> bool

val key : int -> string

val initial_data : conf -> (string * string) list
(** Every key initialised to "0". *)

val sampler : conf -> Sim.Dist.zipf

val partition_of_key : n_groups:int -> string -> int

module Make (C : Cc_types.Kv_api.S) : sig
  val run :
    C.t ->
    Sim.Rng.t ->
    Sim.Dist.zipf ->
    kind ->
    (Cc_types.Outcome.t -> unit) ->
    unit
end
