lib/harness/run.ml: Array Cc_types List Morty Sim Simnet Spanner Stats String Tapir Workload
