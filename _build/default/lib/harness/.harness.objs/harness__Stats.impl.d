lib/harness/stats.ml: Array Fmt Printf
