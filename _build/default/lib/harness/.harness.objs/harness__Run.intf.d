lib/harness/run.mli: Morty Simnet Stats Workload
