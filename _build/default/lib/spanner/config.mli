(** Spanner deployment tunables.

    [truetime_eps_us] is the emulated TrueTime uncertainty (the paper
    uses 10 ms, the p99.9 value observed in production): read-write
    transactions commit-wait for it, and read-only transactions read at
    a timestamp that far in the past. *)

type t = {
  f : int;
  n_groups : int;
  truetime_eps_us : int;
  max_clock_skew_us : int;
  lock_cost_us : int;
  prepare_cost_us : int;
  commit_cost_us : int;
  ro_cost_us : int;
  paxos_cost_us : int;
  prepare_timeout_us : int;
      (** breaks cross-leader 2PC deadlocks: a prepare whose write locks
          are still queued after this long is wounded *)
}

val default : t

val n_replicas : t -> int
