lib/spanner/lock_table.ml: Cc_types Hashtbl List
