lib/spanner/lock_table.mli: Cc_types
