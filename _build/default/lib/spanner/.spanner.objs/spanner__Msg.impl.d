lib/spanner/msg.ml: Cc_types
