lib/spanner/msg.mli: Cc_types
