lib/spanner/client.ml: Array Cc_types Config Hashtbl List Msg Sim Simnet
