lib/spanner/replica.ml: Array Cc_types Config Hashtbl List Lock_table Msg Sim Simnet String
