lib/spanner/replica.mli: Config Msg Sim Simnet
