lib/spanner/config.ml:
