lib/spanner/config.mli:
