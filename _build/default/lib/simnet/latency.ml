type region = Us_east_1 | Us_west_1 | Us_west_2 | Eu_west_1 | Az of int

type setup = Reg | Con | Glo

let region_name = function
  | Us_east_1 -> "us-east-1"
  | Us_west_1 -> "us-west-1"
  | Us_west_2 -> "us-west-2"
  | Eu_west_1 -> "eu-west-1"
  | Az i -> Printf.sprintf "az-%d" i

let setup_name = function Reg -> "REG" | Con -> "CON" | Glo -> "GLO"

let setup_of_string s =
  match String.uppercase_ascii s with
  | "REG" -> Some Reg
  | "CON" -> Some Con
  | "GLO" -> Some Glo
  | _ -> None

let regions = function
  | Reg -> [| Az 0; Az 1; Az 2 |]
  | Con -> [| Us_east_1; Us_west_1; Us_west_2 |]
  | Glo -> [| Us_east_1; Us_west_1; Eu_west_1 |]

let ms n = n * 1000

(* Cross-region RTTs from Table 2 (AWS measurements).  The measured
   matrix is symmetric, so normalise each pair to a canonical order. *)
let rank = function
  | Us_east_1 -> 0
  | Us_west_1 -> 1
  | Us_west_2 -> 2
  | Eu_west_1 -> 3
  | Az i -> 4 + i

let aws_rtt_ms a b =
  if a = b then 0
  else
    let a, b = if rank a <= rank b then (a, b) else (b, a) in
    match (a, b) with
    | Us_east_1, Us_west_1 -> 62
    | Us_east_1, Us_west_2 -> 68
    | Us_east_1, Eu_west_1 -> 68
    | Us_west_1, Us_west_2 -> 22
    | Us_west_1, Eu_west_1 -> 138
    | Us_west_2, Eu_west_1 -> 128
    | (Us_east_1 | Us_west_1 | Us_west_2 | Eu_west_1 | Az _), _ -> 10

let rtt_us setup a b =
  if a = b then 0
  else
    match setup with
    | Reg -> ms 10
    | Con | Glo -> ms (aws_rtt_ms a b)

let one_way_us setup a b = rtt_us setup a b / 2

let table2 =
  let cols = [ Us_east_1; Us_west_1; Us_west_2; Eu_west_1 ] in
  let row a = (region_name a, List.map (fun b -> (region_name b, aws_rtt_ms a b)) cols) in
  [ row Us_east_1; row Us_west_1 ]
