type job = { cost : int; run : unit -> unit }

type t = {
  engine : Sim.Engine.t;
  n_cores : int;
  mutable free : int;
  waiting : job Queue.t;
  mutable busy_us : int;
  mutable completed : int;
}

let create engine ~cores =
  if cores <= 0 then invalid_arg "Cpu.create: cores must be positive";
  { engine; n_cores = cores; free = cores; waiting = Queue.create (); busy_us = 0; completed = 0 }

let cores t = t.n_cores

let rec start t job =
  t.free <- t.free - 1;
  ignore
    (Sim.Engine.schedule t.engine ~after:job.cost (fun () ->
         t.busy_us <- t.busy_us + job.cost;
         t.completed <- t.completed + 1;
         job.run ();
         t.free <- t.free + 1;
         if not (Queue.is_empty t.waiting) then start t (Queue.pop t.waiting)))

let submit t ~cost f =
  let job = { cost = max 0 cost; run = f } in
  if t.free > 0 then start t job else Queue.push job t.waiting

let busy_us t = t.busy_us
let completed t = t.completed
let queue_length t = Queue.length t.waiting

let utilization t ~duration =
  if duration <= 0 then 0.
  else float_of_int t.busy_us /. float_of_int (t.n_cores * duration)

let reset_stats t =
  t.busy_us <- 0;
  t.completed <- 0
