(** Wide-area latency model reproducing Table 2 of the paper.

    Three network setups are evaluated (§5, "Network Setup"):
    - {b REG}: replicas in different availability zones of one region,
      10 ms inter-replica RTT;
    - {b CON}: US-based AWS regions (us-east-1, us-west-1, us-west-2);
    - {b GLO}: US + Europe (us-east-1, us-west-1, eu-west-1). *)

type region =
  | Us_east_1
  | Us_west_1
  | Us_west_2
  | Eu_west_1
  | Az of int  (** Availability zone [i] within a single region (REG). *)

type setup = Reg | Con | Glo

val region_name : region -> string

val setup_name : setup -> string

val setup_of_string : string -> setup option

val regions : setup -> region array
(** The three replica sites used by a setup, in replica-index order. *)

val rtt_us : setup -> region -> region -> int
(** Round-trip time in microseconds between two sites, per Table 2
    (10 ms for any distinct pair under [Reg]; 0 between a site and
    itself). *)

val one_way_us : setup -> region -> region -> int
(** Half the RTT: the message propagation delay used by the simulator. *)

val table2 : (string * (string * int) list) list
(** The cross-region RTT matrix exactly as printed in Table 2
    (milliseconds), for the [table2] bench target. *)
