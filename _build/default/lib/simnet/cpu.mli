(** Simulated multi-core processor pool.

    A replica with [cores] workers processes up to [cores] jobs
    concurrently; excess jobs queue FIFO.  This is what lets the
    reproduction measure (a) multi-core throughput scaling (Fig. 8) and
    (b) the paper's observation that TAPIR/Spanner replicas sit at ≤17 %
    CPU under contention — their clients are backing off, so the cores
    are idle. *)

type t

val create : Sim.Engine.t -> cores:int -> t

val cores : t -> int

val submit : t -> cost:int -> (unit -> unit) -> unit
(** [submit t ~cost f] runs [f] once a core has been free for [cost]
    microseconds of service time.  Jobs are served FIFO. *)

val busy_us : t -> int
(** Cumulative core-busy microseconds consumed so far. *)

val completed : t -> int
(** Number of jobs completed. *)

val queue_length : t -> int
(** Jobs waiting for a core right now. *)

val utilization : t -> duration:int -> float
(** [utilization t ~duration] is busy time divided by [cores * duration],
    in [\[0, 1\]]. *)

val reset_stats : t -> unit
(** Zero the busy/completed counters (called at the end of warm-up). *)
