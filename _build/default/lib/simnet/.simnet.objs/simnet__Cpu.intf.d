lib/simnet/cpu.mli: Sim
