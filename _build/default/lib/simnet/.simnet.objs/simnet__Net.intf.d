lib/simnet/net.mli: Latency Sim
