lib/simnet/net.ml: Array Hashtbl Latency List Sim
