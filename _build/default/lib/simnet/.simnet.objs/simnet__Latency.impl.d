lib/simnet/latency.ml: List Printf String
