lib/simnet/cpu.ml: Queue Sim
