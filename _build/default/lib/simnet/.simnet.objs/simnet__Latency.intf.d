lib/simnet/latency.mli:
