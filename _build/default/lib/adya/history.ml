module Version = Cc_types.Version

type txn = {
  ver : Version.t;
  reads : (string * Version.t) list;
  writes : string list;
  committed : bool;
  start_us : int;
  commit_us : int;
}

type t = { by_ver : txn Version.Map.t }

let empty = { by_ver = Version.Map.empty }

let add t txn =
  if Version.Map.mem txn.ver t.by_ver then
    invalid_arg
      (Fmt.str "History.add: duplicate transaction %a" Version.pp txn.ver);
  { by_ver = Version.Map.add txn.ver txn t.by_ver }

let of_list l = List.fold_left add empty l

let txns t = List.map snd (Version.Map.bindings t.by_ver)

let committed t = List.filter (fun txn -> txn.committed) (txns t)

let find t ver = Version.Map.find_opt ver t.by_ver

let version_order t key =
  List.filter_map
    (fun txn ->
      if txn.committed && List.exists (String.equal key) txn.writes then
        Some txn.ver
      else None)
    (txns t)

let pp ppf t =
  let pp_txn ppf txn =
    Fmt.pf ppf "%a %s reads=[%a] writes=[%a]" Version.pp txn.ver
      (if txn.committed then "C" else "A")
      Fmt.(list ~sep:comma (pair ~sep:(any "@") string Version.pp))
      txn.reads
      Fmt.(list ~sep:comma string)
      txn.writes
  in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_txn) (txns t)
