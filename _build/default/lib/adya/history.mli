(** Adya-style transactional histories (§2 and Appendix A of the paper).

    A history records, for each transaction, the versions it read (naming
    the writer) and the keys it wrote, together with the outcome.  The
    per-key version order is derived from the total order on transaction
    versions, exactly as Morty defines it (Lemma B.4, step ⟨1⟩2):
    [x_i << x_j  <=>  ver(T_i) < ver(T_j)].

    Histories are the input to {!Dsg}, the serializability oracle used by
    the protocol test suites. *)

type txn = {
  ver : Cc_types.Version.t;  (** total-order position (node of the DSG) *)
  reads : (string * Cc_types.Version.t) list;  (** (key, writer version) *)
  writes : string list;  (** keys installed *)
  committed : bool;
  start_us : int;  (** first operation time (diagnostics, windows) *)
  commit_us : int;  (** commit event time; [-1] if aborted *)
}

type t

val empty : t

val add : t -> txn -> t
(** Add a transaction.  Raises [Invalid_argument] on a duplicate
    version. *)

val of_list : txn list -> t

val txns : t -> txn list
(** All recorded transactions, in version order. *)

val committed : t -> txn list
(** Committed transactions only, in version order. *)

val find : t -> Cc_types.Version.t -> txn option

val version_order : t -> string -> Cc_types.Version.t list
(** Committed installers of a key, in version order (excluding the
    initial version [Version.zero], which implicitly precedes all). *)

val pp : Format.formatter -> t -> unit
