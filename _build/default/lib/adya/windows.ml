module Version = Cc_types.Version

type event = {
  ver : Version.t;
  write_us : int;
  commit_us : int;
  read_from : Version.t option;
}

type window = { ver : Version.t; lo : int; hi : int }

(* Both window kinds share the same backwards recursion; they differ only
   in which event timestamps bound the interval. *)
let compute ~start_time ~end_time (events : event list) =
  let arr = Array.of_list events in
  let n = Array.length arr in
  let time_of ver =
    let found = ref 0 in
    Array.iter (fun (e : event) -> if Version.equal e.ver ver then found := start_time e) arr;
    !found
  in
  let windows = Array.make n { ver = Version.zero; lo = 0; hi = 0 } in
  (* b_j of the version following the last one is unbounded. *)
  let next_b = ref max_int in
  for i = n - 1 downto 0 do
    let e = arr.(i) in
    let b = min (end_time e) !next_b in
    let a =
      match e.read_from with
      | None -> b
      | Some k -> min (time_of k) !next_b
    in
    windows.(i) <- { ver = e.ver; lo = a; hi = b };
    next_b := b
  done;
  Array.to_list windows

let serialization_windows events =
  compute ~start_time:(fun e -> e.write_us) ~end_time:(fun e -> e.write_us)
    events

let validity_windows events =
  compute ~start_time:(fun e -> e.commit_us) ~end_time:(fun e -> e.commit_us)
    events

let overlapping windows =
  let rec scan = function
    | a :: (b :: _ as rest) ->
      (* In version order, window a must end before window b begins. *)
      if a.hi > b.lo then Some (a, b) else scan rest
    | [ _ ] | [] -> None
  in
  scan windows

let mean_length_us windows =
  match windows with
  | [] -> 0.
  | _ ->
    let total =
      List.fold_left (fun acc w -> acc +. float_of_int (w.hi - w.lo)) 0. windows
    in
    total /. float_of_int (List.length windows)
