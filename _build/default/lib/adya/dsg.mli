(** Direct serialization graph and serializability oracle.

    Builds DSG(H) from a {!History.t} per Definitions A.1–A.4 and checks
    the conditions of Definition A.10: no aborted reads (G1a), no
    intermediate reads (G1b, precluded by construction since histories
    record final writes only), and acyclicity.  Used by the test suites
    to verify that every history produced by Morty and the baselines is
    serializable (Theorem 4.1). *)

type edge_kind =
  | Wr  (** write–read: reader directly read-depends on writer *)
  | Ww  (** write–write: consecutive installers of some key *)
  | Rw  (** read–write: anti-dependency *)

type edge = {
  src : Cc_types.Version.t;
  dst : Cc_types.Version.t;
  kind : edge_kind;
  key : string;
}

type violation =
  | Aborted_read of { reader : Cc_types.Version.t; writer : Cc_types.Version.t; key : string }
      (** G1a: a committed transaction read a version written by an
          aborted (or unknown, non-initial) transaction. *)
  | Cycle of edge list  (** G1c/G2: a cycle in DSG(H). *)

val edges : History.t -> edge list
(** All conflict edges between committed transactions. *)

val check : History.t -> (unit, violation) result
(** [Ok ()] iff the history is serializable in Adya's sense. *)

val pp_violation : Format.formatter -> violation -> unit

val is_serializable : History.t -> bool
