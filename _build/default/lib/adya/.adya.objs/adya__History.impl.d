lib/adya/history.ml: Cc_types Fmt List String
