lib/adya/analysis.ml: Cc_types Fmt Hashtbl History List String Windows
