lib/adya/analysis.mli: Format History
