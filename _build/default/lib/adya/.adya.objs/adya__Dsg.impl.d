lib/adya/dsg.ml: Cc_types Fmt Hashtbl History List
