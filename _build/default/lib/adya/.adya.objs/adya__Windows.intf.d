lib/adya/windows.mli: Cc_types
