lib/adya/dsg.mli: Cc_types Format History
