lib/adya/windows.ml: Array Cc_types List
