lib/adya/history.mli: Cc_types Format
