(** Window analysis over recorded histories.

    Bridges the paper's theory (§2) and its measurements: given a
    history with per-transaction start/commit times, compute each key's
    serialization and validity windows and summarise their lengths — the
    quantity that bounds hot-key throughput (throughput ≤ 1 / mean
    window length).  Used by tests (Theorems 2.1/2.2 on real runs) and
    by the [windows] example. *)

type report = {
  key : string;
  writers : int;  (** committed transactions that wrote the key *)
  mean_validity_us : float;
  max_validity_us : int;
  overlap : bool;  (** true would contradict Theorem 2.2 *)
}

val validity_report : History.t -> key:string -> report
(** Windows computed from commit events ([commit_us]) of the committed
    writers of [key], in version order; dependencies come from each
    writer's recorded read of the key. *)

val hottest_keys : History.t -> limit:int -> (string * int) list
(** Keys by committed-writer count, descending. *)

val report_all : History.t -> limit:int -> report list
(** Reports for the [limit] hottest keys. *)

val pp_report : Format.formatter -> report -> unit
