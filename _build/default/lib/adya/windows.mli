(** Serialization windows and validity windows (§2, Appendix C).

    These windows characterise the maximum rate at which conflicting
    read–modify–write transactions can commit: windows of committed
    transactions on the same object never overlap (Theorems 2.1 / C.1 and
    2.2 / C.2), so throughput on a hot object is bounded by the inverse
    of the window length.  The [windows] example binary and several tests
    use this module to measure window lengths and verify non-overlap in
    executions produced by the real protocols. *)

type event = {
  ver : Cc_types.Version.t;  (** the writer [T_i] *)
  write_us : int;  (** time of the write event [w_i(x_i)] *)
  commit_us : int;  (** time of the commit event [c_i] *)
  read_from : Cc_types.Version.t option;
      (** [Some k] if [T_i] read version [x_k] before writing; [None] if
          it is a blind write *)
}

type window = { ver : Cc_types.Version.t; lo : int; hi : int }

val serialization_windows : event list -> window list
(** [serialization_windows events] computes each committed writer's
    serialization window on the object per Definition C.1.  [events]
    must be the committed installers of a single object, in version
    order.  A [read_from] version not present in [events] (e.g. the
    initial version) is treated as written at time 0. *)

val validity_windows : event list -> window list
(** Same, for validity windows (Definition C.2): start at the
    dependency's commit, end at own commit. *)

val overlapping : window list -> (window * window) option
(** First pair of windows that overlap in more than a boundary point,
    if any.  Theorems C.1/C.2 guarantee [None] for histories produced by
    a serializable system. *)

val mean_length_us : window list -> float
(** Average window length — the quantity that bounds hot-key
    throughput. *)
