module Version = Cc_types.Version

type edge_kind = Wr | Ww | Rw

type edge = { src : Version.t; dst : Version.t; kind : edge_kind; key : string }

type violation =
  | Aborted_read of { reader : Version.t; writer : Version.t; key : string }
  | Cycle of edge list

let pp_kind ppf = function
  | Wr -> Fmt.string ppf "wr"
  | Ww -> Fmt.string ppf "ww"
  | Rw -> Fmt.string ppf "rw"

let pp_edge ppf e =
  Fmt.pf ppf "%a -%a(%s)-> %a" Version.pp e.src pp_kind e.kind e.key Version.pp
    e.dst

let pp_violation ppf = function
  | Aborted_read { reader; writer; key } ->
    Fmt.pf ppf "G1a: committed %a read %s from non-committed %a" Version.pp
      reader key Version.pp writer
  | Cycle edges ->
    Fmt.pf ppf "cycle: @[<h>%a@]" Fmt.(list ~sep:(any " ; ") pp_edge) edges

(* Keys written by the committed transactions of [h], with their version
   order (Version.zero is the implicit first version of every key). *)
let keys_written h =
  let keys = Hashtbl.create 64 in
  List.iter
    (fun (txn : History.txn) ->
      List.iter (fun k -> Hashtbl.replace keys k ()) txn.writes)
    (History.committed h);
  Hashtbl.fold (fun k () acc -> k :: acc) keys []

let edges h =
  let committed = History.committed h in
  let acc = ref [] in
  let emit src dst kind key =
    if not (Version.equal src dst) then acc := { src; dst; kind; key } :: !acc
  in
  (* ww edges: consecutive versions in each key's version order. *)
  List.iter
    (fun key ->
      let order = History.version_order h key in
      let rec consecutive = function
        | a :: (b :: _ as rest) ->
          emit a b Ww key;
          consecutive rest
        | [ _ ] | [] -> ()
      in
      consecutive order)
    (keys_written h);
  (* wr and rw edges from each committed read. *)
  List.iter
    (fun (txn : History.txn) ->
      List.iter
        (fun (key, writer) ->
          if not (Version.is_zero writer) then emit writer txn.ver Wr key;
          (* rw: the installer of the version immediately after [writer]
             in the version order anti-depends on this reader. *)
          let order = History.version_order h key in
          let next =
            let rec find = function
              | a :: b :: rest ->
                if Version.equal a writer then Some b else find (b :: rest)
              | [ _ ] | [] -> None
            in
            if Version.is_zero writer then
              match order with v :: _ -> Some v | [] -> None
            else find order
          in
          match next with
          | Some nxt -> emit txn.ver nxt Rw key
          | None -> ())
        txn.reads)
    committed;
  !acc

let check h =
  let committed = History.committed h in
  (* G1a: aborted reads. *)
  let g1a =
    List.find_map
      (fun (txn : History.txn) ->
        List.find_map
          (fun (key, writer) ->
            if Version.is_zero writer then None
            else
              match History.find h writer with
              | Some w when w.committed -> None
              | Some _ | None ->
                Some (Aborted_read { reader = txn.ver; writer; key }))
          txn.reads)
      committed
  in
  match g1a with
  | Some v -> Error v
  | None ->
    (* Cycle detection: DFS over the adjacency map. *)
    let es = edges h in
    let adj = Hashtbl.create 64 in
    List.iter
      (fun e ->
        let cur = try Hashtbl.find adj e.src with Not_found -> [] in
        Hashtbl.replace adj e.src (e :: cur))
      es;
    let color = Hashtbl.create 64 in
    (* 0 = white (absent), 1 = grey, 2 = black. *)
    let exception Found of edge list in
    let rec dfs path v =
      Hashtbl.replace color v 1;
      List.iter
        (fun e ->
          match Hashtbl.find_opt color e.dst with
          | Some 1 ->
            (* Back edge: the cycle is the suffix of the root-to-here path
               starting at the first edge leaving [e.dst], plus [e]. *)
            let fwd = List.rev (e :: path) in
            let rec drop = function
              | [] -> []
              | (e' : edge) :: rest ->
                if Version.equal e'.src e.dst then e' :: rest else drop rest
            in
            raise (Found (drop fwd))
          | Some _ -> ()
          | None -> dfs (e :: path) e.dst)
        (try Hashtbl.find adj v with Not_found -> []);
      Hashtbl.replace color v 2
    in
    (try
       List.iter
         (fun (txn : History.txn) ->
           if not (Hashtbl.mem color txn.ver) then dfs [] txn.ver)
         committed;
       Ok ()
     with Found cycle -> Error (Cycle cycle))

let is_serializable h = match check h with Ok () -> true | Error _ -> false
