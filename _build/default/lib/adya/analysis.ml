module Version = Cc_types.Version

type report = {
  key : string;
  writers : int;
  mean_validity_us : float;
  max_validity_us : int;
  overlap : bool;
}

let writers_of h key =
  List.filter
    (fun (txn : History.txn) -> List.exists (String.equal key) txn.writes)
    (History.committed h)

let validity_report h ~key =
  let writers = writers_of h key in
  let events =
    List.map
      (fun (txn : History.txn) ->
        {
          Windows.ver = txn.ver;
          write_us = txn.start_us;
          commit_us = txn.commit_us;
          read_from = List.assoc_opt key txn.reads;
        })
      writers
  in
  let windows = Windows.validity_windows events in
  let finite = List.filter (fun (w : Windows.window) -> w.hi < max_int) windows in
  {
    key;
    writers = List.length writers;
    mean_validity_us = Windows.mean_length_us finite;
    max_validity_us =
      List.fold_left (fun acc (w : Windows.window) -> max acc (w.hi - w.lo)) 0 finite;
    overlap = Windows.overlapping windows <> None;
  }

let hottest_keys h ~limit =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (txn : History.txn) ->
      List.iter
        (fun k ->
          Hashtbl.replace counts k (1 + try Hashtbl.find counts k with Not_found -> 0))
        txn.writes)
    (History.committed h);
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < limit)

let report_all h ~limit =
  List.map (fun (key, _) -> validity_report h ~key) (hottest_keys h ~limit)

let pp_report ppf r =
  Fmt.pf ppf "%-20s writers=%-5d mean-window=%8.1fus max=%8dus %s" r.key r.writers
    r.mean_validity_us r.max_validity_us
    (if r.overlap then "OVERLAP!" else "ok")
