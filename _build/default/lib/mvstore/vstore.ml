type t = (string, Vrecord.t) Hashtbl.t

let create () = Hashtbl.create 1024

let find t key =
  match Hashtbl.find_opt t key with
  | Some v -> v
  | None ->
    let v = Vrecord.create () in
    Hashtbl.replace t key v;
    v

let find_existing t key = Hashtbl.find_opt t key

let load t pairs =
  List.iter
    (fun (key, value) ->
      Vrecord.commit_write (find t key) ~ver:Cc_types.Version.zero value)
    pairs

let iter t f = Hashtbl.iter f t

let key_count t = Hashtbl.length t
