lib/mvstore/vstore.mli: Vrecord
