lib/mvstore/vrecord.mli: Cc_types
