lib/mvstore/vstore.ml: Cc_types Hashtbl List Vrecord
