lib/mvstore/vrecord.ml: Cc_types Hashtbl List String
