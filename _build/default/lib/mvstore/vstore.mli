(** The replica-wide key → {!Vrecord} map, with bulk loading. *)

type t

val create : unit -> t

val find : t -> string -> Vrecord.t
(** Record for a key, created on demand. *)

val find_existing : t -> string -> Vrecord.t option
(** Record for a key if one exists (avoids allocating records for keys
    only ever probed). *)

val load : t -> (string * string) list -> unit
(** Install initial data as committed writes at {!Cc_types.Version.zero}
    — the effect of the initialisation transaction [T_init]. *)

val iter : t -> (string -> Vrecord.t -> unit) -> unit

val key_count : t -> int
