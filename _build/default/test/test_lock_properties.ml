(* Property-based tests over randomized operation sequences for the two
   stateful substrates: Spanner's wound-wait lock table and Morty's
   multi-version record. *)

module Version = Cc_types.Version
module Lt = Spanner.Lock_table
module Vr = Mvstore.Vrecord

let v ts = Version.make ~ts ~id:0

(* ---- Lock table invariants under random workloads ---- *)

type lt_op = Acquire of int * string * Lt.mode | Release of int

let lt_op_gen =
  QCheck.Gen.(
    frequency
      [
        (3,
         map3
           (fun t k w -> Acquire (t, (if k then "k1" else "k2"), if w then Lt.Write else Lt.Read))
           (int_range 1 8) bool bool);
        (2, map (fun t -> Release t) (int_range 1 8));
      ])

let lt_ops = QCheck.make QCheck.Gen.(list_size (1 -- 60) lt_op_gen)

(* Apply ops, releasing wounded transactions recursively as the replica
   does, and check structural invariants after every step. *)
let run_lock_ops ops =
  let t = Lt.create () in
  let no_immune _ = false in
  let rec release txn =
    let grants, wounded = Lt.release_all t ~txn ~is_immune:no_immune in
    ignore grants;
    List.iter release wounded
  in
  let ok = ref true in
  let check_invariants () =
    (* At most one writer per key, and a writer excludes readers. *)
    List.iter
      (fun key ->
        let holders =
          List.filter
            (fun ts -> Lt.holds t ~txn:(v ts) ~key Lt.Write)
            (List.init 8 (fun i -> i + 1))
        in
        if List.length holders > 1 then ok := false;
        if List.length holders = 1 then begin
          let w = List.hd holders in
          List.iter
            (fun ts ->
              if ts <> w && Lt.holds t ~txn:(v ts) ~key Lt.Read then ok := false)
            (List.init 8 (fun i -> i + 1))
        end)
      [ "k1"; "k2" ]
  in
  List.iter
    (fun op ->
      (match op with
       | Acquire (ts, key, mode) ->
         let _, wounded = Lt.acquire t ~txn:(v ts) ~key ~mode ~is_immune:no_immune in
         List.iter release wounded
       | Release ts -> release (v ts));
      check_invariants ())
    ops;
  !ok

let qcheck_lock_exclusion =
  QCheck.Test.make ~name:"lock table: writer exclusion invariant" ~count:300 lt_ops
    run_lock_ops

(* Wound-wait progress: when everything queued is eventually released,
   every grant that was promised materialises (no lost wakeups): after
   releasing all live holders, no waiter remains. *)
let qcheck_lock_drains =
  QCheck.Test.make ~name:"lock table: releasing everything drains the queues"
    ~count:300 lt_ops (fun ops ->
      let t = Lt.create () in
      let no_immune _ = false in
      let rec release txn =
        let _, wounded = Lt.release_all t ~txn ~is_immune:no_immune in
        List.iter release wounded
      in
      List.iter
        (fun op ->
          match op with
          | Acquire (ts, key, mode) ->
            let _, wounded =
              Lt.acquire t ~txn:(v ts) ~key ~mode ~is_immune:no_immune
            in
            List.iter (fun w -> release w) wounded
          | Release ts -> release (v ts))
        ops;
      for ts = 1 to 8 do
        release (v ts)
      done;
      Lt.waiting t = 0)

(* ---- Vrecord invariants ---- *)

type vr_op =
  | Write_u of int * string  (** uncommitted write *)
  | Commit_w of int * string
  | Abort_w of int
  | Read_at of int

let vr_op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map2 (fun ts s -> Write_u (ts, string_of_int s)) (int_range 1 50) small_nat);
        (3, map2 (fun ts s -> Commit_w (ts, string_of_int s)) (int_range 1 50) small_nat);
        (1, map (fun ts -> Abort_w ts) (int_range 1 50));
        (3, map (fun ts -> Read_at ts) (int_range 1 51));
      ])

let qcheck_vrecord_read_visibility =
  QCheck.Test.make ~name:"vrecord: reads return the newest visible version below"
    ~count:500
    (QCheck.make QCheck.Gen.(list_size (1 -- 40) vr_op_gen))
    (fun ops ->
      let vr = Vr.create () in
      (* Reference model: committed and uncommitted maps. *)
      let committed = Hashtbl.create 16 and uncommitted = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Write_u (ts, value) ->
            ignore (Vr.add_write vr ~ver:(v ts) value);
            Hashtbl.replace uncommitted ts value
          | Commit_w (ts, value) ->
            Vr.commit_write vr ~ver:(v ts) value;
            Hashtbl.remove uncommitted ts;
            Hashtbl.replace committed ts value
          | Abort_w ts ->
            Vr.abort_writes vr ~ver:(v ts);
            Hashtbl.remove uncommitted ts
          | Read_at ts ->
            let reply = Vr.latest_before vr (v ts) in
            (* Model: newest version (committed or uncommitted) < ts;
               if both stores hold ts', committed wins (same value slot). *)
            let best = ref None in
            let consider t' value =
              if t' < ts then
                match !best with
                | Some (bt, _) when bt >= t' -> ()
                | _ -> best := Some (t', value)
            in
            Hashtbl.iter (fun t' value -> consider t' value) committed;
            Hashtbl.iter
              (fun t' value ->
                if not (Hashtbl.mem committed t') then consider t' value)
              uncommitted;
            (match !best with
             | None ->
               if not (Version.is_zero reply.r_ver && String.equal reply.r_val "")
               then ok := false
             | Some (bt, bv) ->
               if reply.r_ver.Version.ts <> bt || not (String.equal reply.r_val bv)
               then ok := false))
        ops;
      !ok)

let qcheck_vrecord_committed_value_exact =
  QCheck.Test.make ~name:"vrecord: committed_value is exact" ~count:300
    (QCheck.make QCheck.Gen.(list_size (1 -- 30) vr_op_gen))
    (fun ops ->
      let vr = Vr.create () in
      let committed = Hashtbl.create 16 in
      List.iter
        (fun op ->
          match op with
          | Commit_w (ts, value) ->
            Vr.commit_write vr ~ver:(v ts) value;
            Hashtbl.replace committed ts value
          | Write_u (ts, value) -> ignore (Vr.add_write vr ~ver:(v ts) value)
          | Abort_w ts -> Vr.abort_writes vr ~ver:(v ts)
          | Read_at _ -> ())
        ops;
      Hashtbl.fold
        (fun ts value acc -> acc && Vr.committed_value vr (v ts) = Some value)
        committed true)

let suites =
  [
    ( "properties.locks",
      [
        QCheck_alcotest.to_alcotest qcheck_lock_exclusion;
        QCheck_alcotest.to_alcotest qcheck_lock_drains;
      ] );
    ( "properties.vrecord",
      [
        QCheck_alcotest.to_alcotest qcheck_vrecord_read_visibility;
        QCheck_alcotest.to_alcotest qcheck_vrecord_committed_value_exact;
      ] );
  ]
