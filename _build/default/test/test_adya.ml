(* Tests for the Adya-model history checker: DSG construction, the
   serializability oracle, and window computations (paper §2, App. A/C). *)

module Version = Cc_types.Version

let v ts = Version.make ~ts ~id:0
let v' ts id = Version.make ~ts ~id

let txn ?(committed = true) ?(start_us = 0) ?(commit_us = 0) ver reads writes =
  { Adya.History.ver; reads; writes; committed; start_us; commit_us }

let check_ok h =
  match Adya.Dsg.check h with
  | Ok () -> ()
  | Error viol -> Alcotest.failf "unexpected violation: %a" Adya.Dsg.pp_violation viol

let check_cycle h =
  match Adya.Dsg.check h with
  | Error (Adya.Dsg.Cycle _) -> ()
  | Error v -> Alcotest.failf "expected cycle, got %a" Adya.Dsg.pp_violation v
  | Ok () -> Alcotest.fail "expected cycle, history accepted"

let test_empty_history () = check_ok Adya.History.empty

let test_serial_chain () =
  (* T1 writes x; T2 reads T1's x and overwrites it; T3 likewise. *)
  let h =
    Adya.History.of_list
      [
        txn (v 1) [] [ "x" ];
        txn (v 2) [ ("x", v 1) ] [ "x" ];
        txn (v 3) [ ("x", v 2) ] [ "x" ];
      ]
  in
  check_ok h

let test_lost_update_cycle () =
  (* Classic lost update: both T2 and T3 read T1's x and both overwrite.
     T2 -rw-> T3 (T2 read x1, T3 installs x3 after... ) and T3 reads x1
     while T2 installed x2 in between: T3 -rw-> ... produces a cycle. *)
  let h =
    Adya.History.of_list
      [
        txn (v 1) [] [ "x" ];
        txn (v 2) [ ("x", v 1) ] [ "x" ];
        txn (v 3) [ ("x", v 1) ] [ "x" ];
      ]
  in
  check_cycle h

let test_aborted_read_detected () =
  let h =
    Adya.History.of_list
      [
        txn ~committed:false (v 1) [] [ "x" ];
        txn (v 2) [ ("x", v 1) ] [ "y" ];
      ]
  in
  match Adya.Dsg.check h with
  | Error (Adya.Dsg.Aborted_read { reader; writer; key }) ->
    Alcotest.(check bool) "reader" true (Version.equal reader (v 2));
    Alcotest.(check bool) "writer" true (Version.equal writer (v 1));
    Alcotest.(check string) "key" "x" key
  | Error viol -> Alcotest.failf "wrong violation: %a" Adya.Dsg.pp_violation viol
  | Ok () -> Alcotest.fail "aborted read accepted"

let test_read_from_initial_version () =
  let h = Adya.History.of_list [ txn (v 1) [ ("x", Version.zero) ] [ "x" ] ] in
  check_ok h

let test_aborted_txns_do_not_constrain () =
  (* An aborted transaction reading stale data creates no violation. *)
  let h =
    Adya.History.of_list
      [
        txn (v 1) [] [ "x" ];
        txn (v 2) [ ("x", v 1) ] [ "x" ];
        txn ~committed:false (v 3) [ ("x", v 1) ] [ "x" ];
      ]
  in
  check_ok h

let test_write_skew_cycle () =
  (* T2 reads x0 writes y; T3 reads y0 writes x: rw edges both ways. *)
  let h =
    Adya.History.of_list
      [
        txn (v 1) [] [ "x"; "y" ];
        txn (v 2) [ ("x", v 1) ] [ "y" ];
        txn (v 3) [ ("y", v 1) ] [ "x" ];
      ]
  in
  (* T2 -rw-> T3 (x: T2 read x1, T3 installs next x) and
     T3 -rw-> T2 (y: T3 read y1, T2 installs next y): cycle. *)
  check_cycle h

let test_read_only_txns_ok () =
  let h =
    Adya.History.of_list
      [
        txn (v 1) [] [ "x" ];
        txn (v 2) [ ("x", v 1) ] [];
        txn (v 3) [ ("x", v 1) ] [ "x" ];
      ]
  in
  (* The read-only T2 reading x1 while T3 overwrites is fine:
     T1 -> T2, T2 -rw-> T3, T1 -> T3: acyclic. *)
  check_ok h

let test_stale_read_cycle_with_ww () =
  (* T3 reads the initial version of x although T2 (smaller version)
     installed x2: T3 -rw-> T2 ... wait, reading x0 with next installer
     T2 gives T3 -rw-> T2; and ww T2 -> T3? T3 doesn't write x. Use a
     different shape: T2 writes x, T3 reads x0 and writes x. Then
     version order x2 << x3, T3 read x0 whose next version is x2:
     T3 -rw-> T2 and ww T2 -> T3: cycle. *)
  let h =
    Adya.History.of_list
      [
        txn (v 2) [] [ "x" ];
        txn (v 3) [ ("x", Version.zero) ] [ "x" ];
      ]
  in
  check_cycle h

let test_version_order_follows_versions () =
  let h =
    Adya.History.of_list
      [
        txn (v' 5 1) [] [ "k" ];
        txn (v' 3 2) [] [ "k" ];
        txn ~committed:false (v' 4 0) [] [ "k" ];
      ]
  in
  let order = Adya.History.version_order h "k" in
  Alcotest.(check (list string)) "sorted committed installers"
    [ "v(3,2)"; "v(5,1)" ]
    (List.map Version.to_string order)

let test_duplicate_rejected () =
  let h = Adya.History.of_list [ txn (v 1) [] [] ] in
  match Adya.History.add h (txn (v 1) [] []) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate accepted"

(* Windows. *)

let ev ver write_us commit_us read_from =
  { Adya.Windows.ver; write_us; commit_us; read_from }

let test_serialization_windows_chain () =
  (* Three RMW transactions back to back. *)
  let events =
    [
      ev (v 1) 10 15 (Some Version.zero);
      ev (v 2) 20 25 (Some (v 1));
      ev (v 3) 30 35 (Some (v 2));
    ]
  in
  let ws = Adya.Windows.serialization_windows events in
  let bounds = List.map (fun (w : Adya.Windows.window) -> (w.lo, w.hi)) ws in
  Alcotest.(check (list (pair int int)))
    "windows" [ (0, 10); (10, 20); (20, 30) ] bounds;
  Alcotest.(check (option reject)) "no overlap" None
    (Adya.Windows.overlapping ws)

let test_validity_windows_chain () =
  let events =
    [
      ev (v 1) 10 15 (Some Version.zero);
      ev (v 2) 20 25 (Some (v 1));
      ev (v 3) 30 35 (Some (v 2));
    ]
  in
  let ws = Adya.Windows.validity_windows events in
  let bounds = List.map (fun (w : Adya.Windows.window) -> (w.lo, w.hi)) ws in
  Alcotest.(check (list (pair int int)))
    "windows" [ (0, 15); (15, 25); (25, 35) ] bounds

let test_blind_write_window_is_point () =
  let ws = Adya.Windows.serialization_windows [ ev (v 1) 10 12 None ] in
  match ws with
  | [ w ] ->
    Alcotest.(check int) "lo" 10 w.lo;
    Alcotest.(check int) "hi" 10 w.hi
  | _ -> Alcotest.fail "expected one window"

let test_overlap_detection () =
  let ws =
    [
      { Adya.Windows.ver = v 1; lo = 0; hi = 20 };
      { Adya.Windows.ver = v 2; lo = 10; hi = 30 };
    ]
  in
  Alcotest.(check bool) "detected" true (Adya.Windows.overlapping ws <> None)

let test_mean_length () =
  let ws =
    [
      { Adya.Windows.ver = v 1; lo = 0; hi = 10 };
      { Adya.Windows.ver = v 2; lo = 10; hi = 30 };
    ]
  in
  Alcotest.(check (float 1e-9)) "mean" 15. (Adya.Windows.mean_length_us ws)

(* Property: a history generated as a true serial execution always
   passes the oracle. *)
let qcheck_serial_histories_accepted =
  QCheck.Test.make ~name:"serial executions are serializable" ~count:200
    QCheck.(list_of_size Gen.(1 -- 30) (pair (int_bound 4) (int_bound 4)))
    (fun ops ->
      (* Sequentially apply RMW transactions over 5 keys; each reads the
         current version of its key and installs a new one. *)
      let latest = Array.make 5 Version.zero in
      let _, txns =
        List.fold_left
          (fun (i, acc) (k1, k2) ->
            let ver = Version.make ~ts:i ~id:0 in
            let reads = [ (string_of_int k1, latest.(k1)) ] in
            let writes =
              if k1 = k2 then [ string_of_int k1 ]
              else [ string_of_int k1; string_of_int k2 ]
            in
            latest.(k1) <- ver;
            latest.(k2) <- ver;
            ( i + 1,
              txn ver reads writes :: acc ))
          (1, []) ops
      in
      Adya.Dsg.is_serializable (Adya.History.of_list txns))

(* Property: reading a version that was not the latest at the reader's
   position, while also writing that key, always creates a cycle. *)
let qcheck_stale_rmw_rejected =
  QCheck.Test.make ~name:"stale RMW creates a cycle" ~count:100
    QCheck.(int_range 2 20)
    (fun n ->
      let txns =
        List.init n (fun i ->
            let ver = Version.make ~ts:(i + 1) ~id:0 in
            (* Everyone reads the initial version but writes x. *)
            txn ver [ ("x", Version.zero) ] [ "x" ])
      in
      not (Adya.Dsg.is_serializable (Adya.History.of_list txns)))

(* ---- Analysis ---- *)

let test_analysis_report () =
  let h =
    Adya.History.of_list
      [
        txn ~start_us:0 ~commit_us:10 (v 1) [ ("x", Version.zero) ] [ "x" ];
        txn ~start_us:5 ~commit_us:25 (v 2) [ ("x", v 1) ] [ "x" ];
        txn ~start_us:8 ~commit_us:40 (v 3) [ ("x", v 2) ] [ "x"; "y" ];
      ]
  in
  let r = Adya.Analysis.validity_report h ~key:"x" in
  Alcotest.(check int) "writers" 3 r.writers;
  Alcotest.(check bool) "no overlap" false r.overlap;
  (* Windows: [0,10], [10,25], [25,40] -> mean 13.33. *)
  Alcotest.(check (float 0.1)) "mean" 13.33 r.mean_validity_us;
  Alcotest.(check int) "max" 15 r.max_validity_us

let test_analysis_hottest () =
  let h =
    Adya.History.of_list
      [
        txn (v 1) [] [ "x" ];
        txn (v 2) [] [ "x"; "y" ];
        txn (v 3) [] [ "x" ];
      ]
  in
  match Adya.Analysis.hottest_keys h ~limit:2 with
  | [ ("x", 3); ("y", 1) ] -> ()
  | other ->
    Alcotest.failf "unexpected: %s"
      (String.concat ";" (List.map (fun (k, c) -> Printf.sprintf "%s=%d" k c) other))

let suites =
  [
    ( "adya.dsg",
      [
        Alcotest.test_case "empty history" `Quick test_empty_history;
        Alcotest.test_case "serial chain" `Quick test_serial_chain;
        Alcotest.test_case "lost update cycle" `Quick test_lost_update_cycle;
        Alcotest.test_case "aborted read" `Quick test_aborted_read_detected;
        Alcotest.test_case "read from initial version" `Quick test_read_from_initial_version;
        Alcotest.test_case "aborted txns unconstrained" `Quick test_aborted_txns_do_not_constrain;
        Alcotest.test_case "write skew cycle" `Quick test_write_skew_cycle;
        Alcotest.test_case "read-only ok" `Quick test_read_only_txns_ok;
        Alcotest.test_case "stale read + ww cycle" `Quick test_stale_read_cycle_with_ww;
        Alcotest.test_case "version order" `Quick test_version_order_follows_versions;
        Alcotest.test_case "duplicate rejected" `Quick test_duplicate_rejected;
        QCheck_alcotest.to_alcotest qcheck_serial_histories_accepted;
        QCheck_alcotest.to_alcotest qcheck_stale_rmw_rejected;
      ] );
    ( "adya.windows",
      [
        Alcotest.test_case "serialization windows chain" `Quick test_serialization_windows_chain;
        Alcotest.test_case "validity windows chain" `Quick test_validity_windows_chain;
        Alcotest.test_case "blind write point window" `Quick test_blind_write_window_is_point;
        Alcotest.test_case "overlap detection" `Quick test_overlap_detection;
        Alcotest.test_case "mean length" `Quick test_mean_length;
      ] );
    ( "adya.analysis",
      [
        Alcotest.test_case "validity report" `Quick test_analysis_report;
        Alcotest.test_case "hottest keys" `Quick test_analysis_hottest;
      ] );
  ]
