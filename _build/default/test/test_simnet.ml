(* Tests for the simulated network, latency model and CPU pools. *)

open Simnet

let mk_net ?(setup = Latency.Reg) ?(jitter_us = 0) () =
  let e = Sim.Engine.create () in
  let r = Sim.Rng.create 1 in
  let net = Net.create e r ~setup ~jitter_us () in
  (e, net)

let test_latency_table2_values () =
  let rtt = Latency.rtt_us Latency.Con in
  Alcotest.(check int) "east-west1" 62_000 (rtt Latency.Us_east_1 Latency.Us_west_1);
  Alcotest.(check int) "west1-west2" 22_000 (rtt Latency.Us_west_1 Latency.Us_west_2);
  Alcotest.(check int) "east-east" 0 (rtt Latency.Us_east_1 Latency.Us_east_1);
  let rtt_glo = Latency.rtt_us Latency.Glo in
  Alcotest.(check int) "west1-eu" 138_000 (rtt_glo Latency.Us_west_1 Latency.Eu_west_1)

let test_latency_symmetry () =
  List.iter
    (fun setup ->
      let regions = Latency.regions setup in
      Array.iter
        (fun a ->
          Array.iter
            (fun b ->
              Alcotest.(check int) "symmetric" (Latency.rtt_us setup a b)
                (Latency.rtt_us setup b a))
            regions)
        regions)
    [ Latency.Reg; Latency.Con; Latency.Glo ]

let test_latency_reg_is_10ms () =
  Alcotest.(check int) "REG RTT" 10_000 (Latency.rtt_us Latency.Reg (Latency.Az 0) (Latency.Az 1))

let test_net_delivers () =
  let e, net = mk_net () in
  let a = Net.add_node net ~region:(Latency.Az 0) in
  let b = Net.add_node net ~region:(Latency.Az 1) in
  let got = ref None in
  Net.set_handler net b (fun ~src m -> got := Some (src, m));
  Net.send net ~src:a ~dst:b "hello";
  Sim.Engine.run e;
  Alcotest.(check (option (pair int string))) "delivered" (Some (a, "hello")) !got;
  (* One-way REG latency is 5 ms + base 60 us. *)
  Alcotest.(check int) "delivery time" 5_060 (Sim.Engine.now e)

let test_net_fifo_per_pair () =
  let e, net = mk_net ~jitter_us:500 () in
  let a = Net.add_node net ~region:(Latency.Az 0) in
  let b = Net.add_node net ~region:(Latency.Az 1) in
  let got = ref [] in
  Net.set_handler net b (fun ~src:_ m -> got := m :: !got);
  for i = 0 to 19 do
    Net.send net ~src:a ~dst:b i
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "fifo" (List.init 20 (fun i -> i)) (List.rev !got)

let test_net_crash_drops () =
  let e, net = mk_net () in
  let a = Net.add_node net ~region:(Latency.Az 0) in
  let b = Net.add_node net ~region:(Latency.Az 1) in
  let got = ref 0 in
  Net.set_handler net b (fun ~src:_ _ -> incr got);
  Net.crash net b;
  Net.send net ~src:a ~dst:b ();
  Sim.Engine.run e;
  Alcotest.(check int) "dropped" 0 !got;
  Alcotest.(check int) "counted" 1 (Net.messages_dropped net);
  Net.recover net b;
  Net.send net ~src:a ~dst:b ();
  Sim.Engine.run e;
  Alcotest.(check int) "delivered after recover" 1 !got

let test_net_crash_mid_flight () =
  let e, net = mk_net () in
  let a = Net.add_node net ~region:(Latency.Az 0) in
  let b = Net.add_node net ~region:(Latency.Az 1) in
  let got = ref 0 in
  Net.set_handler net b (fun ~src:_ _ -> incr got);
  Net.send net ~src:a ~dst:b ();
  (* Crash the destination before the message lands. *)
  ignore (Sim.Engine.schedule e ~after:100 (fun () -> Net.crash net b));
  Sim.Engine.run e;
  Alcotest.(check int) "dropped mid-flight" 0 !got

let test_net_no_handler_drops () =
  let e, net = mk_net () in
  let a = Net.add_node net ~region:(Latency.Az 0) in
  let b = Net.add_node net ~region:(Latency.Az 1) in
  Net.send net ~src:a ~dst:b ();
  Sim.Engine.run e;
  Alcotest.(check int) "dropped" 1 (Net.messages_dropped net)

let test_net_wan_slower_than_lan () =
  let e = Sim.Engine.create () in
  let r = Sim.Rng.create 1 in
  let net = Net.create e r ~setup:Latency.Glo ~jitter_us:0 () in
  let a = Net.add_node net ~region:Latency.Us_west_1 in
  let b = Net.add_node net ~region:Latency.Eu_west_1 in
  let at = ref 0 in
  Net.set_handler net b (fun ~src:_ () -> at := Sim.Engine.now e);
  Net.send net ~src:a ~dst:b ();
  Sim.Engine.run e;
  Alcotest.(check int) "transatlantic one-way" 69_060 !at

let test_cpu_serialises_on_one_core () =
  let e = Sim.Engine.create () in
  let cpu = Cpu.create e ~cores:1 in
  let done_at = ref [] in
  for _ = 1 to 3 do
    Cpu.submit cpu ~cost:100 (fun () -> done_at := Sim.Engine.now e :: !done_at)
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "sequential" [ 100; 200; 300 ] (List.rev !done_at);
  Alcotest.(check int) "busy" 300 (Cpu.busy_us cpu);
  Alcotest.(check int) "completed" 3 (Cpu.completed cpu)

let test_cpu_parallel_cores () =
  let e = Sim.Engine.create () in
  let cpu = Cpu.create e ~cores:4 in
  let done_at = ref [] in
  for _ = 1 to 4 do
    Cpu.submit cpu ~cost:100 (fun () -> done_at := Sim.Engine.now e :: !done_at)
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "parallel" [ 100; 100; 100; 100 ] !done_at

let test_cpu_utilization () =
  let e = Sim.Engine.create () in
  let cpu = Cpu.create e ~cores:2 in
  Cpu.submit cpu ~cost:100 (fun () -> ());
  Sim.Engine.run e;
  Alcotest.(check (float 1e-9)) "half a core for 100us" 0.5
    (Cpu.utilization cpu ~duration:100)

let test_cpu_queue_length () =
  let e = Sim.Engine.create () in
  let cpu = Cpu.create e ~cores:1 in
  Cpu.submit cpu ~cost:50 (fun () -> ());
  Cpu.submit cpu ~cost:50 (fun () -> ());
  Cpu.submit cpu ~cost:50 (fun () -> ());
  Alcotest.(check int) "two queued" 2 (Cpu.queue_length cpu);
  Sim.Engine.run e;
  Alcotest.(check int) "drained" 0 (Cpu.queue_length cpu)

let test_cpu_reset_stats () =
  let e = Sim.Engine.create () in
  let cpu = Cpu.create e ~cores:1 in
  Cpu.submit cpu ~cost:10 (fun () -> ());
  Sim.Engine.run e;
  Cpu.reset_stats cpu;
  Alcotest.(check int) "busy reset" 0 (Cpu.busy_us cpu);
  Alcotest.(check int) "completed reset" 0 (Cpu.completed cpu)

let qcheck_net_fifo =
  QCheck.Test.make ~name:"per-pair FIFO under random jitter" ~count:50
    QCheck.(pair small_int (int_range 1 50))
    (fun (seed, n) ->
      let e = Sim.Engine.create () in
      let r = Sim.Rng.create seed in
      let net = Net.create e r ~setup:Latency.Con ~jitter_us:5_000 () in
      let a = Net.add_node net ~region:Latency.Us_east_1 in
      let b = Net.add_node net ~region:Latency.Us_west_1 in
      let got = ref [] in
      Net.set_handler net b (fun ~src:_ m -> got := m :: !got);
      for i = 0 to n - 1 do
        Net.send net ~src:a ~dst:b i
      done;
      Sim.Engine.run e;
      List.rev !got = List.init n (fun i -> i))

let qcheck_cpu_conserves_work =
  QCheck.Test.make ~name:"cpu busy time equals sum of costs" ~count:50
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(1 -- 30) (int_range 1 500)))
    (fun (cores, costs) ->
      let e = Sim.Engine.create () in
      let cpu = Cpu.create e ~cores in
      List.iter (fun c -> Cpu.submit cpu ~cost:c (fun () -> ())) costs;
      Sim.Engine.run e;
      Cpu.busy_us cpu = List.fold_left ( + ) 0 costs
      && Cpu.completed cpu = List.length costs)

let suites =
  [
    ( "simnet.latency",
      [
        Alcotest.test_case "table2 values" `Quick test_latency_table2_values;
        Alcotest.test_case "symmetry" `Quick test_latency_symmetry;
        Alcotest.test_case "REG 10ms" `Quick test_latency_reg_is_10ms;
      ] );
    ( "simnet.net",
      [
        Alcotest.test_case "delivers" `Quick test_net_delivers;
        Alcotest.test_case "fifo per pair" `Quick test_net_fifo_per_pair;
        Alcotest.test_case "crash drops" `Quick test_net_crash_drops;
        Alcotest.test_case "crash mid-flight" `Quick test_net_crash_mid_flight;
        Alcotest.test_case "no handler drops" `Quick test_net_no_handler_drops;
        Alcotest.test_case "wan slower than lan" `Quick test_net_wan_slower_than_lan;
        QCheck_alcotest.to_alcotest qcheck_net_fifo;
      ] );
    ( "simnet.cpu",
      [
        Alcotest.test_case "serialises on one core" `Quick test_cpu_serialises_on_one_core;
        Alcotest.test_case "parallel cores" `Quick test_cpu_parallel_cores;
        Alcotest.test_case "utilization" `Quick test_cpu_utilization;
        Alcotest.test_case "queue length" `Quick test_cpu_queue_length;
        Alcotest.test_case "reset stats" `Quick test_cpu_reset_stats;
        QCheck_alcotest.to_alcotest qcheck_cpu_conserves_work;
      ] );
  ]
