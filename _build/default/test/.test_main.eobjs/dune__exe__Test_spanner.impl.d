test/test_spanner.ml: Adya Alcotest Array Cc_types Hashtbl List QCheck QCheck_alcotest Sim Simnet Spanner String
