test/test_smallbank.ml: Adya Alcotest Array Cc_types List Morty Printf Sim Simnet Workload
