test/test_simnet.ml: Alcotest Array Cpu Gen Latency List Net QCheck QCheck_alcotest Sim Simnet
