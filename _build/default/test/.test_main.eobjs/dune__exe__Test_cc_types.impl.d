test/test_cc_types.ml: Alcotest Cc_types Gen List Option QCheck QCheck_alcotest Sim String
