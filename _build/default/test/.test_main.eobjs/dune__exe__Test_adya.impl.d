test/test_adya.ml: Adya Alcotest Array Cc_types Gen List Printf QCheck QCheck_alcotest String
