test/test_protocol_edge.ml: Alcotest Array Cc_types List Morty Option Printf Sim Simnet Spanner String Workload
