test/test_tapir.ml: Adya Alcotest Array Cc_types Hashtbl List Printf QCheck QCheck_alcotest Sim Simnet String Tapir
