test/test_morty_units.ml: Alcotest Array Cc_types Gen List Morty Mvstore QCheck QCheck_alcotest Sim Simnet
