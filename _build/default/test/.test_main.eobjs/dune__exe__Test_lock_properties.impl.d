test/test_lock_properties.ml: Cc_types Hashtbl List Mvstore QCheck QCheck_alcotest Spanner String
