test/test_faults.ml: Adya Alcotest Array Cc_types Gen Hashtbl List Morty Printf QCheck QCheck_alcotest Sim Simnet String
