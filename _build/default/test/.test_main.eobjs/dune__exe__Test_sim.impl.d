test/test_sim.ml: Alcotest Array Clock Dist Engine Heap List QCheck QCheck_alcotest Rng Sim
