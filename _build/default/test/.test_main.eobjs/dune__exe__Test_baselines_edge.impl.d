test/test_baselines_edge.ml: Alcotest Array Cc_types List Sim Simnet Spanner String Tapir
