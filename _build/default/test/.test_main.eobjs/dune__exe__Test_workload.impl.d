test/test_workload.ml: Adya Alcotest Array Cc_types Hashtbl List Morty Printf Sim Simnet Tapir Workload
