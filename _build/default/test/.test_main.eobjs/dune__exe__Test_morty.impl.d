test/test_morty.ml: Adya Alcotest Array Cc_types List Morty Printf QCheck QCheck_alcotest Sim Simnet String
