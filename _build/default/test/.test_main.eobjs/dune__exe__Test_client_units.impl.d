test/test_client_units.ml: Alcotest Array Cc_types List Morty Sim Simnet String
