(* Deterministic exploration harness driver: sweep systems x workloads x
   seeds x fault schedules, audit every run against the Adya
   serializability oracle plus sanity invariants, and shrink any failure
   to a minimal printed reproducer.

     dune exec bin/morty_explore.exe -- --systems all --seeds 20 --smoke

   The summary line is bit-identical across invocations with the same
   flags (no wall-clock, no OS randomness): diff two runs to check your
   build is deterministic. *)

open Cmdliner

let systems_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "all" -> Ok Harness.Run.all_systems
    | spec ->
      let names = String.split_on_char ',' spec in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | n :: rest -> (
          match Harness.Run.system_of_string n with
          | Some sys -> go (sys :: acc) rest
          | None -> Error (`Msg (Printf.sprintf "unknown system %S" n)))
      in
      go [] names
  in
  let print ppf systems =
    Format.pp_print_string ppf
      (String.concat "," (List.map Harness.Run.system_name systems))
  in
  Arg.conv (parse, print)

let systems =
  Arg.(value & opt systems_arg Harness.Run.all_systems
       & info [ "systems" ]
           ~doc:"Systems to explore: $(b,all) or a comma-separated subset of \
                 morty,mvtso,tapir,spanner.")

let workload_arg =
  let names = List.map fst Explore.Case.workloads in
  let parse s =
    if List.mem s names then Ok s
    else
      Error
        (`Msg (Printf.sprintf "unknown workload %S (known: %s)" s
                 (String.concat ", " names)))
  in
  Arg.conv (parse, Format.pp_print_string)

let workloads =
  let names = List.map fst Explore.Case.workloads in
  Arg.(value & opt (list workload_arg) [ "ycsb-small" ]
       & info [ "workloads" ]
           ~doc:(Printf.sprintf "Comma-separated workload names (known: %s)."
                   (String.concat ", " names)))

let seeds =
  Arg.(value & opt int 5
       & info [ "seeds" ] ~doc:"Number of seeds to sweep (seed-base, seed-base+1, ...).")

let seed_base =
  Arg.(value & opt int 1 & info [ "seed-base" ] ~doc:"First seed of the sweep.")

let schedules =
  Arg.(value & opt int 2
       & info [ "schedules" ]
           ~doc:"Generated fault schedules per seed (a fault-free run is always \
                 included in addition).")

let episodes =
  Arg.(value & opt int 2
       & info [ "episodes" ]
           ~doc:"Fault episodes (crash/partition/loss/delay brackets) per \
                 generated schedule.")

let clients = Arg.(value & opt int 8 & info [ "clients" ] ~doc:"Closed-loop clients.")

let cores =
  Arg.(value & opt int 2
       & info [ "cores" ]
           ~doc:"Cores per replica (Morty/MVTSO) or replica groups (TAPIR/Spanner).")

let measure_ms =
  Arg.(value & opt int 400
       & info [ "measure-ms" ] ~doc:"Measurement window per run, virtual ms.")

let smoke =
  Arg.(value & flag
       & info [ "smoke" ]
           ~doc:"Bounded CI preset: 200 ms windows, 8 clients — each run well \
                 under a second.")

let no_kill =
  Arg.(value & flag
       & info [ "no-kill" ]
           ~doc:"Exclude amnesia-crash (kill/restart) episodes from generated \
                 schedules; keep only crash/partition/loss/delay faults.")

let partitions =
  Arg.(value & flag
       & info [ "partitions" ]
           ~doc:"Include datacenter partition+heal episodes in generated \
                 schedules (named asymmetric cuts at region granularity).")

let max_staleness_us =
  Arg.(value & opt int 0
       & info [ "max-staleness-us" ]
           ~doc:"Follower-read staleness bound, virtual µs.  $(b,0) (default) \
                 disables follower reads; positive values route read-only \
                 transactions to watermark-fresh replicas with graceful \
                 degradation under partitions.")

let monitors =
  Arg.(value & flag
       & info [ "monitors" ]
           ~doc:"Attach online invariant monitors to every run: any monitor \
                 firing counts as a failure and is shrunk like an audit \
                 failure.  Monitors are pure observers, so pass/fail \
                 histories are unchanged.")

let quiet =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Print only the summary line.")

let jobs =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ]
           ~doc:"Worker domains for the run fan-out.  $(b,1) (default) runs \
                 the original serial loop; $(b,0) picks \
                 recommended_domain_count - 1.  Output on stdout is \
                 byte-identical whatever the value — timing goes to stderr.")

let scaling =
  Arg.(value & opt (some string) None
       & info [ "scaling" ]
           ~doc:"Self-sweep the orchestrator: run the identical sweep once \
                 per jobs value in this comma-separated list (e.g. \
                 $(b,1,2,4)), print per-value throughput and a fitted \
                 USL $(b,scaling:) line to stderr.  Stdout carries the \
                 first value's transcript only (the repeats are \
                 byte-identical by construction)." ~docv:"JOBS")

let trace_out =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ]
           ~doc:"Write each audit failure's span trace (Chrome trace_event \
                 JSON of the shrunk reproducer's run, Perfetto-loadable) to \
                 $(docv), $(docv).2, ... in failure order." ~docv:"FILE")

let profile_out =
  Arg.(value & opt (some string) None
       & info [ "profile-out" ]
           ~doc:"Write each audit failure's critical-path profile (JSON, \
                 latency decomposition + wasted work + hot keys of the shrunk \
                 reproducer's run) to $(docv), $(docv).2, ... in failure \
                 order." ~docv:"FILE")

let engine_stats_out =
  Arg.(value & opt (some string) None
       & info [ "engine-stats-out" ]
           ~doc:"Write the sweep's aggregated engine-performance record \
                 (events/sec, timer-heap counters, GC deltas, domain \
                 utilization) as single-line JSON to $(docv), print its \
                 deterministic summary ($(b,engine:) line) after the SUMMARY \
                 line and its host summary ($(b,engine-host:) line) on \
                 stderr.  The deterministic section is byte-identical across \
                 hosts and --jobs values; with --scaling it reflects the \
                 first sweep only." ~docv:"FILE")

let lineage_out =
  Arg.(value & opt (some string) None
       & info [ "lineage-out" ]
           ~doc:"Write each audit failure's causal lineage (JSONL, one \
                 transaction per line: reads, re-execution triggers with \
                 aggressors, typed abort blame — of the shrunk reproducer's \
                 run) to $(docv), $(docv).2, ... in failure order.  Feed to \
                 $(b,morty_inspect) to ask why a transaction aborted." ~docv:"FILE")

let postmortem_out =
  Arg.(value & opt (some string) None
       & info [ "postmortem-out" ]
           ~doc:"Write each failure's post-mortem bundle (violations, \
                 per-replica snapshots, flight-recorder ring, trace slice, \
                 profile, metrics) to directory $(docv), $(docv).2, ... in \
                 failure order, next to the printed reproducer." ~docv:"DIR")

let ledger_out =
  Arg.(value & opt (some string) None
       & info [ "ledger-out" ]
           ~doc:"Write the sweep's passing runs as a schema-versioned run \
                 ledger to $(docv): one entry per system, every metric a \
                 sample array across the system's runs (seeds x schedules, \
                 submission order).  Feed the file to $(b,morty_report) to \
                 compare sweeps statistically.  Stdout is byte-identical \
                 with or without this flag; with --scaling it reflects the \
                 first sweep only." ~docv:"FILE")

let run systems workload_names seeds seed_base schedules episodes clients cores
    measure_ms smoke no_kill partitions max_staleness_us monitors quiet jobs
    scaling trace_out profile_out lineage_out engine_stats_out ledger_out
    postmortem_out =
  let measure_us = if smoke then 200_000 else measure_ms * 1000 in
  let cfg =
    {
      Explore.Sweep.default_config with
      systems;
      workload_names;
      seeds = List.init (max 1 seeds) (fun i -> seed_base + i);
      schedules_per_seed = max 0 schedules;
      episodes = max 1 episodes;
      clients;
      cores;
      measure_us;
      kill_restart = not no_kill;
      partitions;
      max_staleness_us = max 0 max_staleness_us;
      monitors;
    }
  in
  (* One-look digest of where the run's time and contention went:
     dominant latency component plus the three hottest keys. *)
  let profile_digest prof =
    let hot =
      match Obs.Profile.hot_keys prof 3 with
      | [] -> "-"
      | hot -> String.concat "," (List.map fst hot)
    in
    Printf.sprintf "dom=%s hot=%s" (Obs.Profile.dominant_component prof) hot
  in
  let progress case prof outcome =
    if not quiet then
      match outcome with
      | Ok r ->
        let rc = r.Harness.Stats.r_recovery in
        if rc.Harness.Stats.rc_kills > 0 then
          Fmt.pr
            "pass %-55s committed=%d aborted=%d kills=%d restarts=%d \
             transfer_msgs=%d %s@."
            (Explore.Case.label case) r.Harness.Stats.r_committed
            r.Harness.Stats.r_aborted rc.Harness.Stats.rc_kills
            rc.Harness.Stats.rc_restarts rc.Harness.Stats.rc_transfer_msgs
            (profile_digest prof)
        else
          let ev = r.Harness.Stats.r_events in
          Fmt.pr
            "pass %-55s committed=%d aborted=%d events=t:%d/d:%d/k:%d %s@."
            (Explore.Case.label case) r.Harness.Stats.r_committed
            r.Harness.Stats.r_aborted ev.Harness.Stats.ev_timers
            ev.Harness.Stats.ev_deliveries ev.Harness.Stats.ev_tickers
            (profile_digest prof)
      | Error v ->
        Fmt.pr "FAIL %-55s %s %s@." (Explore.Case.label case)
          (Explore.Audit.violation_to_string v)
          (profile_digest prof)
  in
  let jobs = if jobs = 0 then Orchestrate.Pool.default_jobs () else max 1 jobs in
  let jobs_list =
    match scaling with
    | None -> [ jobs ]
    | Some spec ->
      let vals =
        List.filter_map
          (fun s -> int_of_string_opt (String.trim s))
          (String.split_on_char ',' spec)
      in
      let vals = List.filter (fun j -> j >= 1) vals in
      if vals = [] then [ jobs ] else vals
  in
  (* All timing and throughput reporting goes to stderr: stdout is the
     byte-identical diff surface the smoke aliases compare, and wall
     clock must never leak into it. *)
  let events = ref 0 in
  let count_events _case _prof outcome =
    match outcome with
    | Ok r ->
      let ev = r.Harness.Stats.r_events in
      events :=
        !events + ev.Harness.Stats.ev_timers + ev.Harness.Stats.ev_deliveries
        + ev.Harness.Stats.ev_tickers
    | Error _ -> ()
  in
  (* Per-system ledger rows, in submission order (the progress callback
     fires in submission order whatever --jobs is, so the artifact is
     deterministic). *)
  let ledger_rows = ref [] in
  let collect_ledger case _prof outcome =
    match outcome with
    | Ok r when ledger_out <> None ->
      let det, host = Harness.Stats.ledger_metrics r in
      ledger_rows :=
        (Harness.Run.system_name case.Explore.Case.c_system, det, host)
        :: !ledger_rows
    | Ok _ | Error _ -> ()
  in
  let timed_sweep ~jobs ~transcript =
    let progress c p o =
      if transcript then begin
        count_events c p o;
        collect_ledger c p o;
        progress c p o
      end
    in
    let elapsed = Orchestrate.Report.stopwatch () in
    let summary = Explore.Sweep.run ~progress ~jobs cfg in
    (summary, elapsed ())
  in
  let measured =
    List.mapi
      (fun i jobs ->
        let summary, wall = timed_sweep ~jobs ~transcript:(i = 0) in
        (jobs, summary, wall))
      jobs_list
  in
  let summary, report =
    match measured with
    | (jobs, summary, wall) :: _ ->
      ( summary,
        {
          Orchestrate.Report.o_jobs = jobs;
          o_runs = summary.Explore.Sweep.s_runs;
          o_events = !events;
          o_wall_s = wall;
        } )
    | [] -> assert false
  in
  let numbered base i =
    if i = 0 then base else Printf.sprintf "%s.%d" base (i + 1)
  in
  let write path s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  List.iteri
    (fun i
         { Explore.Sweep.f_original; f_shrunk; f_trace; f_profile; f_lineage;
           f_bundle } ->
      Fmt.pr "@.=== audit violation: %s@."
        (Explore.Audit.violation_to_string f_shrunk.Explore.Shrink.s_violation);
      Fmt.pr "original: %s@." (Explore.Case.label f_original);
      Fmt.pr "shrunk (%d runs): %s@." f_shrunk.Explore.Shrink.s_runs
        (Explore.Case.label f_shrunk.Explore.Shrink.s_case);
      Fmt.pr "--- reproducer -------------------------------------------------@.";
      Fmt.pr "%s" (Explore.Shrink.reproducer f_shrunk);
      Fmt.pr "----------------------------------------------------------------@.";
      (match trace_out with
      | None -> ()
      | Some base ->
        let path = numbered base i in
        write path f_trace;
        Fmt.pr "trace of shrunk case written to %s@." path);
      (match profile_out with
      | None -> ()
      | Some base ->
        let path = numbered base i in
        write path f_profile;
        Fmt.pr "profile of shrunk case written to %s@." path);
      (match lineage_out with
      | None -> ()
      | Some base ->
        let path = numbered base i in
        write path f_lineage;
        Fmt.pr "lineage of shrunk case written to %s@." path);
      match postmortem_out with
      | None -> ()
      | Some base ->
        let dir = numbered base i in
        Obs.Postmortem.write ~dir f_bundle;
        Fmt.pr "post-mortem bundle of shrunk case written to %s/@." dir)
    summary.Explore.Sweep.s_failures;
  Fmt.pr "SUMMARY %a@." Explore.Sweep.pp_summary summary;
  (match engine_stats_out with
  | None -> ()
  | Some path ->
    let es = summary.Explore.Sweep.s_engstat in
    (* Deterministic section on stdout (jobs-invariant, diffable); the
       wall/GC/utilization summary goes to stderr with the report. *)
    Fmt.pr "%s@." (Obs.Engstat.det_line es);
    Fmt.epr "%s@." (Obs.Engstat.host_line es);
    write path (Obs.Engstat.to_json es));
  (match ledger_out with
  | None -> ()
  | Some path ->
    let rows = List.rev !ledger_rows in
    let entries =
      List.filter_map
        (fun sys ->
          let name = Harness.Run.system_name sys in
          let mine =
            List.filter_map
              (fun (s, det, host) -> if s = name then Some (det, host) else None)
              rows
          in
          match mine with
          | [] -> None
          | first :: _ ->
            let collect sel =
              List.map
                (fun (m, _) ->
                  ( m,
                    Array.of_list
                      (List.map (fun row -> List.assoc m (sel row)) mine) ))
                (sel first)
            in
            Some
              {
                Obs.Ledger.en_system = name;
                en_point = String.concat "," workload_names;
                en_det = collect fst;
                en_host = collect snd;
              })
        systems
    in
    let config =
      Printf.sprintf
        "morty_explore workloads=%s schedules=%d episodes=%d clients=%d \
         cores=%d measure_us=%d kill_restart=%b partitions=%b \
         max_staleness_us=%d systems=%s"
        (String.concat "," workload_names)
        cfg.Explore.Sweep.schedules_per_seed cfg.Explore.Sweep.episodes clients
        cores measure_us cfg.Explore.Sweep.kill_restart
        cfg.Explore.Sweep.partitions cfg.Explore.Sweep.max_staleness_us
        (String.concat "," (List.map Harness.Run.system_name systems))
    in
    write path
      (Obs.Ledger.to_json
         (Obs.Ledger.make ~config ~seeds:cfg.Explore.Sweep.seeds entries)));
  Fmt.epr "%s@." (Orchestrate.Report.to_string report);
  (match measured with
  | _ :: _ :: _ ->
    let points =
      List.map
        (fun (jobs, (s : Explore.Sweep.summary), wall) ->
          (jobs, float_of_int s.Explore.Sweep.s_runs /. Float.max wall 1e-9))
        measured
    in
    Fmt.epr "%s@." (Orchestrate.Report.scaling_line points)
  | _ -> ());
  if summary.Explore.Sweep.s_failures = [] then 0 else 1

let cmd =
  let doc = "Deterministic exploration: audited histories under seeded fault schedules" in
  Cmd.v
    (Cmd.info "morty_explore" ~doc)
    Term.(
      const run $ systems $ workloads $ seeds $ seed_base $ schedules $ episodes
      $ clients $ cores $ measure_ms $ smoke $ no_kill $ partitions
      $ max_staleness_us $ monitors $ quiet $ jobs $ scaling $ trace_out
      $ profile_out $ lineage_out $ engine_stats_out $ ledger_out
      $ postmortem_out)

let () = exit (Cmd.eval' cmd)
