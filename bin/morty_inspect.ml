(* Offline lineage inspector: answer "why did this transaction abort /
   re-execute?" from a lineage JSONL file (written by morty_bench
   --lineage-out, morty_explore --lineage-out, or a sweep failure's
   f_lineage artifact).

     morty_inspect explain  FILE v(ts,id)   causal account of one txn
     morty_inspect hot-keys FILE [N]        top-N contended keys
     morty_inspect cascades FILE            cascade stats + aggressor matrix
     morty_inspect diff     FILE_A FILE_B   compare two runs' digests

   Everything is derived from the file alone — no simulator state — so
   the tool works on artifacts from any of the four systems. *)

let usage () =
  prerr_endline
    "usage: morty_inspect explain FILE TXN   (TXN like 'v(ts,id)' or 'ts,id')\n\
    \       morty_inspect hot-keys FILE [N]\n\
    \       morty_inspect cascades FILE\n\
    \       morty_inspect diff FILE_A FILE_B\n\
     exit codes: 0 ok, 1 malformed artifact, 2 usage, 3 missing file,\n\
    \            4 empty artifact (no lineage records)";
  exit 2

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> s
  | exception Sys_error msg ->
    Printf.eprintf "morty_inspect: %s\n" msg;
    exit 3

let load path =
  match Obs.Lineage.parse_jsonl (read_file path) with
  | [] ->
    Printf.eprintf "morty_inspect: %s: empty artifact (no lineage records)\n"
      path;
    exit 4
  | recs -> recs
  | exception Failure msg ->
    Printf.eprintf "morty_inspect: %s: %s\n" path msg;
    exit 1

let explain path spec =
  match Obs.Lineage.ver_of_string spec with
  | None ->
    Printf.eprintf
      "morty_inspect: cannot parse transaction id %S (want 'v(ts,id)', \
       'ts,id' or 'ts:id')\n"
      spec;
    exit 2
  | Some ver -> print_string (Obs.Lineage.explain (load path) ver)

let hot_keys path n =
  let recs = load path in
  let hot = Obs.Lineage.hot_keys recs n in
  if hot = [] then print_endline "no contention recorded"
  else begin
    Printf.printf "%-32s %8s %9s %7s %6s\n" "key" "reexecs" "conflicts"
      "aborts" "heat";
    List.iter
      (fun (key, h) ->
        Printf.printf "%-32s %8d %9d %7d %6d\n" key
          h.Obs.Lineage.hk_reexecs h.Obs.Lineage.hk_conflicts
          h.Obs.Lineage.hk_aborts
          (h.Obs.Lineage.hk_reexecs + h.Obs.Lineage.hk_conflicts
          + h.Obs.Lineage.hk_aborts))
      hot
  end

let cascades path =
  let recs = load path in
  let c = Obs.Lineage.cascades recs in
  Printf.printf
    "cascades=%d victims=%d depth_p99=%.2f depth_max=%d max_fanout=%d \
     salvaged_us=%d lost_us=%d\n"
    c.Obs.Lineage.c_count c.Obs.Lineage.c_victims c.Obs.Lineage.c_depth_p99
    c.Obs.Lineage.c_depth_max c.Obs.Lineage.c_max_fanout
    c.Obs.Lineage.c_salvaged_us c.Obs.Lineage.c_lost_us;
  if c.Obs.Lineage.c_depth_hist <> [] then begin
    print_endline "blame-chain depth histogram:";
    List.iter
      (fun (d, n) -> Printf.printf "  depth %2d: %d\n" d n)
      c.Obs.Lineage.c_depth_hist
  end;
  match Obs.Lineage.matrix recs with
  | [] -> ()
  | m ->
    print_endline "aggressor x victim (by transaction type):";
    List.iter
      (fun ((agg, vic), n) -> Printf.printf "  %-14s -> %-14s %d\n" agg vic n)
      m

let diff path_a path_b =
  let line name (a : Obs.Lineage.summary) =
    Printf.printf
      "%-10s txns=%d edges=%d cascades=%d depth_p99=%.2f depth_max=%d \
       salvaged_us=%d lost_us=%d hot=%s\n"
      name a.Obs.Lineage.s_txns a.Obs.Lineage.s_edges a.Obs.Lineage.s_cascades
      a.Obs.Lineage.s_depth_p99 a.Obs.Lineage.s_depth_max
      a.Obs.Lineage.s_salvaged_us a.Obs.Lineage.s_lost_us
      a.Obs.Lineage.s_hot_key
  in
  let a = Obs.Lineage.summary (load path_a) in
  let b = Obs.Lineage.summary (load path_b) in
  line "a" a;
  line "b" b;
  Printf.printf
    "%-10s txns=%+d edges=%+d cascades=%+d depth_p99=%+.2f depth_max=%+d \
     salvaged_us=%+d lost_us=%+d hot=%s\n"
    "b-a"
    (b.Obs.Lineage.s_txns - a.Obs.Lineage.s_txns)
    (b.Obs.Lineage.s_edges - a.Obs.Lineage.s_edges)
    (b.Obs.Lineage.s_cascades - a.Obs.Lineage.s_cascades)
    (b.Obs.Lineage.s_depth_p99 -. a.Obs.Lineage.s_depth_p99)
    (b.Obs.Lineage.s_depth_max - a.Obs.Lineage.s_depth_max)
    (b.Obs.Lineage.s_salvaged_us - a.Obs.Lineage.s_salvaged_us)
    (b.Obs.Lineage.s_lost_us - a.Obs.Lineage.s_lost_us)
    (if b.Obs.Lineage.s_hot_key = a.Obs.Lineage.s_hot_key then "same"
     else a.Obs.Lineage.s_hot_key ^ "->" ^ b.Obs.Lineage.s_hot_key)

let () =
  match Array.to_list Sys.argv with
  | _ :: "explain" :: path :: spec :: [] -> explain path spec
  | _ :: "hot-keys" :: path :: rest ->
    let n =
      match rest with
      | [] -> 10
      | [ s ] -> (
        match int_of_string_opt s with Some n when n > 0 -> n | _ -> usage ())
      | _ -> usage ()
    in
    hot_keys path n
  | _ :: "cascades" :: path :: [] -> cascades path
  | _ :: "diff" :: path_a :: path_b :: [] -> diff path_a path_b
  | _ -> usage ()
