(* Command-line experiment runner: run any single experiment point
   (system x network x workload x load) and print the paper-style
   result row.

     dune exec bin/morty_bench.exe -- --system morty --setup reg \
       --workload retwis --theta 0.9 --clients 128 --cores 4 *)

open Cmdliner

let system_arg =
  let parse s =
    match Harness.Run.system_of_string s with
    | Some sys -> Ok sys
    | None ->
      if String.lowercase_ascii s = "tapir-nodist" then Ok Harness.Run.Tapir_nodist
      else Error (`Msg (Printf.sprintf "unknown system %S" s))
  in
  let print ppf s = Format.pp_print_string ppf (Harness.Run.system_name s) in
  Arg.conv (parse, print)

let setup_arg =
  let parse s =
    match Simnet.Latency.setup_of_string s with
    | Some setup -> Ok setup
    | None -> Error (`Msg (Printf.sprintf "unknown setup %S (reg|con|glo)" s))
  in
  let print ppf s = Format.pp_print_string ppf (Simnet.Latency.setup_name s) in
  Arg.conv (parse, print)

let system =
  Arg.(value & opt system_arg Harness.Run.Morty & info [ "system"; "s" ]
         ~doc:"System to run: morty | mvtso | tapir | tapir-nodist | spanner.")

let setup =
  Arg.(value & opt setup_arg Simnet.Latency.Reg & info [ "setup" ]
         ~doc:"Network setup: reg | con | glo (Table 2).")

let workload =
  Arg.(value
       & opt
           (enum
              [ ("retwis", `Retwis); ("tpcc", `Tpcc); ("ycsb", `Ycsb);
                ("smallbank", `Smallbank) ])
           `Retwis
       & info [ "workload"; "w" ] ~doc:"Workload: retwis | tpcc | ycsb | smallbank.")

let theta =
  Arg.(value & opt float 0.9 & info [ "theta" ] ~doc:"Retwis Zipf coefficient.")

let keys =
  Arg.(value & opt int 100_000 & info [ "keys" ] ~doc:"Retwis keyspace size.")

let warehouses =
  Arg.(value & opt int 10 & info [ "warehouses" ] ~doc:"TPC-C warehouse count.")

let read_pct =
  Arg.(value & opt int 50 & info [ "read-pct" ] ~doc:"YCSB read percentage.")

let clients =
  Arg.(value & opt int 64 & info [ "clients"; "c" ] ~doc:"Closed-loop clients.")

let cores =
  Arg.(value & opt int 4 & info [ "cores" ]
         ~doc:"Cores per replica (Morty/MVTSO) or replica groups (TAPIR/Spanner).")

let duration_ms =
  Arg.(value & opt int 1000 & info [ "duration-ms" ]
         ~doc:"Measurement window in virtual milliseconds.")

let warmup_ms =
  Arg.(value & opt int 300 & info [ "warmup-ms" ] ~doc:"Warm-up trim in virtual ms.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic RNG seed.")

let sweep =
  Arg.(value & opt (some (list int)) None
       & info [ "sweep" ]
           ~doc:"Comma-separated client counts: run one point per count and \
                 print the whole load-latency curve.")

let jobs =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ]
           ~doc:"Worker domains for --sweep points.  $(b,1) (default) runs \
                 the points serially on the calling domain; $(b,0) picks \
                 recommended_domain_count - 1.  Rows, files and summaries \
                 are byte-identical whatever the value — throughput \
                 reporting goes to stderr.")

let kill_at_ms =
  Arg.(value & opt (some int) None
       & info [ "kill-at-ms" ]
           ~doc:"Amnesia-crash the victim replica at this virtual time: the \
                 replica loses all in-memory state.")

let restart_at_ms =
  Arg.(value & opt (some int) None
       & info [ "restart-at-ms" ]
           ~doc:"Restart the killed victim as a fresh incarnation (peer \
                 catch-up) at this virtual time.")

let victim =
  Arg.(value & opt int (-1)
       & info [ "victim" ]
           ~doc:"Replica slot for --kill-at-ms/--restart-at-ms (wraps mod the \
                 cluster size; default: the last replica).")

let partition_at_ms =
  Arg.(value & opt (some int) None
       & info [ "partition-at-ms" ]
           ~doc:"Cut one datacenter (latency region) off from the rest of the \
                 cluster — replicas and clients alike — at this virtual time.")

let heal_at_ms =
  Arg.(value & opt (some int) None
       & info [ "heal-at-ms" ]
           ~doc:"Heal the --partition-at-ms cut at this virtual time, \
                 restoring exactly the links it removed.")

let partition_group =
  Arg.(value & opt int 0
       & info [ "partition-group" ]
           ~doc:"Region index for --partition-at-ms (wraps mod the region \
                 count).")

let max_staleness_us =
  Arg.(value & opt int 0
       & info [ "max-staleness-us" ]
           ~doc:"Follower-read staleness bound, virtual µs.  $(b,0) (default) \
                 disables follower reads; positive values route read-only \
                 transactions to watermark-fresh replicas and print an \
                 availability row after the result.")

let trace_out =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ]
           ~doc:"Write a per-transaction span trace (Chrome trace_event JSON, \
                 loadable in Perfetto / chrome://tracing) to $(docv).  With \
                 --sweep, the last point's trace wins." ~docv:"FILE")

let metrics_out =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ]
           ~doc:"Write per-replica time-series samples (CPU busy fraction, \
                 queue depth, record/store sizes, watermark lag on a 10 ms \
                 virtual ticker) as CSV to $(docv)." ~docv:"FILE")

let profile_out =
  Arg.(value & opt (some string) None
       & info [ "profile-out" ]
           ~doc:"Write the critical-path profile (per-transaction latency \
                 decomposition, wasted-work account, key-contention heatmap) \
                 as single-line JSON to $(docv), and print a human summary.  \
                 With --sweep, one JSON document per line, one per point." ~docv:"FILE")

let lineage_out =
  Arg.(value & opt (some string) None
       & info [ "lineage-out" ]
           ~doc:"Write the run's causal lineage (JSONL, one transaction per \
                 line: reads with superseding writers, re-execution triggers \
                 with aggressor transactions, typed abort blame) to $(docv) \
                 and print a one-line digest on stderr.  Feed the file to \
                 $(b,morty_inspect) to explain contention.  With --sweep, \
                 points append in order.  Stdout is byte-identical with or \
                 without this flag." ~docv:"FILE")

let engine_stats_out =
  Arg.(value & opt (some string) None
       & info [ "engine-stats-out" ]
           ~doc:"Write the run's engine-performance record (events/sec, \
                 timer-heap counters, GC deltas, domain utilization) as \
                 single-line JSON to $(docv), print its deterministic \
                 summary ($(b,engine:) line) on stdout and its host summary \
                 ($(b,engine-host:) line) on stderr.  With --sweep the \
                 record aggregates all points.  The deterministic section \
                 is byte-identical across hosts and --jobs values." ~docv:"FILE")

let ledger_out =
  Arg.(value & opt (some string) None
       & info [ "ledger-out" ]
           ~doc:"Write the run as a schema-versioned run ledger (one entry \
                 per point, single-seed samples) to $(docv).  Feed the file \
                 to $(b,morty_report) to compare runs statistically or plot \
                 metric trajectories.  Stdout is byte-identical with or \
                 without this flag." ~docv:"FILE")

let monitors =
  Arg.(value & flag
       & info [ "monitors" ]
           ~doc:"Attach online invariant monitors and the flight recorder to \
                 the run and print a violation summary after the result row.  \
                 Monitors are pure observers: the result is byte-identical \
                 with or without them.")

let postmortem_out =
  Arg.(value & opt (some string) None
       & info [ "postmortem-out" ]
           ~doc:"If the run records any incident (monitor violation or \
                 replica kill), write a post-mortem bundle (violations, \
                 per-replica snapshots, flight-recorder ring, trace slice, \
                 profile, metrics) to directory $(docv).  Implies \
                 --monitors.  With --sweep, bundles go to $(docv), \
                 $(docv).2, ... per point." ~docv:"DIR")

let run system setup workload theta keys warehouses read_pct clients cores
    duration_ms warmup_ms seed sweep jobs kill_at_ms restart_at_ms victim
    partition_at_ms heal_at_ms partition_group max_staleness_us trace_out
    metrics_out profile_out lineage_out engine_stats_out ledger_out monitors
    postmortem_out =
  let e_workload =
    match workload with
    | `Retwis -> Harness.Run.Retwis { Workload.Retwis.n_keys = keys; theta }
    | `Tpcc -> Harness.Run.Tpcc (Workload.Tpcc.conf_with_warehouses warehouses)
    | `Ycsb ->
      Harness.Run.Ycsb
        { Workload.Ycsb.default_conf with n_keys = keys; theta; read_pct }
    | `Smallbank ->
      Harness.Run.Smallbank { Workload.Smallbank.default_conf with theta }
  in
  let mk clients =
    {
      Harness.Run.default_exp with
      e_system = system;
      e_setup = setup;
      e_workload;
      e_clients = clients;
      e_cores = cores;
      e_measure_us = duration_ms * 1000;
      e_warmup_us = warmup_ms * 1000;
      e_seed = seed;
      e_max_staleness_us = max 0 max_staleness_us;
      e_label =
        Printf.sprintf "%s/%s c=%d cores=%d" (Harness.Run.system_name system)
          (Simnet.Latency.setup_name setup) clients cores;
    }
  in
  let faults =
    if kill_at_ms = None && partition_at_ms = None then None
    else
      Some
        (fun (ops : Harness.Run.cluster_ops) ->
          (match kill_at_ms with
          | None -> ()
          | Some kill_ms ->
            ignore
              (Sim.Engine.schedule_at ops.co_engine ~at:(kill_ms * 1000)
                 (fun () -> ops.co_kill victim));
            (match restart_at_ms with
            | None -> ()
            | Some restart_ms ->
              ignore
                (Sim.Engine.schedule_at ops.co_engine ~at:(restart_ms * 1000)
                   (fun () -> ops.co_restart victim))));
          match partition_at_ms with
          | None -> ()
          | Some part_ms ->
            ignore
              (Sim.Engine.schedule_at ops.co_engine ~at:(part_ms * 1000)
                 (fun () -> ops.co_partition partition_group));
            (match heal_at_ms with
            | None -> ()
            | Some heal_ms ->
              ignore
                (Sim.Engine.schedule_at ops.co_engine ~at:(heal_ms * 1000)
                   (fun () -> ops.co_heal partition_group))))
  in
  let write path s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  let monitors = monitors || postmortem_out <> None in
  let profiles = Buffer.create 256 in
  let lineages = Buffer.create 256 in
  let ledger_rows = ref [] in
  let point_idx = ref 0 in
  let events = ref 0 in
  let engstat = ref (Obs.Engstat.zero ~label:"bench") in
  (* Worker half of a point: build private observers, run the
     experiment.  Everything it creates travels back to the main domain
     as a read-only result — with --jobs this is the only code that
     executes on a worker domain. *)
  let compute_point e =
    let obs =
      if trace_out <> None || metrics_out <> None || postmortem_out <> None then
        Obs.Sink.create ~seed:e.Harness.Run.e_seed
      else Obs.Sink.null ()
    in
    let prof =
      if profile_out <> None then
        Obs.Profile.create ~label:e.Harness.Run.e_label ()
      else Obs.Profile.null ()
    in
    let mon = if monitors then Obs.Monitor.create () else Obs.Monitor.null () in
    let flight = if monitors then Obs.Flight.create () else Obs.Flight.null () in
    let lineage =
      if lineage_out <> None then
        Obs.Lineage.create ~label:e.Harness.Run.e_label ()
      else Obs.Lineage.null ()
    in
    let r = Harness.Run.run_exp ?faults ~obs ~prof ~mon ~flight ~lineage e in
    (e, obs, prof, mon, flight, lineage, r)
  in
  (* Render half: all printing and file writes, always on the calling
     domain, in submission order — so stdout and every output file are
     byte-identical whatever --jobs is. *)
  let render_point (e, obs, prof, mon, flight, lineage, r) =
    let ev = r.Harness.Stats.r_events in
    events :=
      !events + ev.Harness.Stats.ev_timers + ev.Harness.Stats.ev_deliveries
      + ev.Harness.Stats.ev_tickers;
    engstat := Obs.Engstat.add !engstat r.Harness.Stats.r_engstat;
    Fmt.pr "%a@." Harness.Stats.pp_result r;
    if r.Harness.Stats.r_recovery.Harness.Stats.rc_kills > 0 then
      Fmt.pr "%a@." Harness.Stats.pp_recovery r;
    if max_staleness_us > 0 then Fmt.pr "%a@." Harness.Stats.pp_avail r;
    if monitors then begin
      Fmt.pr "monitors: %d violations over %d observed transitions@."
        (Obs.Monitor.n_violations mon)
        (Obs.Monitor.n_observed mon);
      List.iter
        (fun v -> Fmt.pr "  %a@." Obs.Monitor.pp_violation v)
        (Obs.Monitor.violations mon)
    end;
    (match postmortem_out with
    | Some base when Obs.Monitor.first_incident_ts mon <> None ->
      let dir =
        if !point_idx = 0 then base
        else Printf.sprintf "%s.%d" base (!point_idx + 1)
      in
      let reason =
        if Obs.Monitor.n_violations mon > 0 then "monitor-violation"
        else "replica-kill"
      in
      let detail =
        match Obs.Monitor.violations mon with
        | v :: _ -> Fmt.str "%a" Obs.Monitor.pp_violation v
        | [] -> (
          match Obs.Monitor.incidents mon with
          | i :: _ -> Printf.sprintf "%s %s" i.Obs.Monitor.in_kind i.in_detail
          | [] -> "")
      in
      let bundle =
        Obs.Postmortem.make ~reason ~detail ~label:e.Harness.Run.e_label
          ~seed:e.Harness.Run.e_seed ~mon ~flight ~sink:obs ~prof ()
      in
      Obs.Postmortem.write ~dir bundle;
      Fmt.pr "post-mortem bundle written to %s/@." dir
    | Some _ | None -> ());
    incr point_idx;
    Option.iter (fun path -> write path (Obs.Trace.to_json obs)) trace_out;
    Option.iter (fun path -> write path (Obs.Metrics.to_csv obs)) metrics_out;
    if profile_out <> None then begin
      (* [to_json] is newline-terminated: with --sweep the file is one
         JSON document per line, one per point. *)
      Buffer.add_string profiles (Obs.Profile.to_json prof);
      Fmt.pr "%a" Obs.Profile.pp_summary prof
    end;
    if lineage_out <> None then begin
      Buffer.add_string lineages (Obs.Lineage.to_jsonl lineage);
      (* Digest on stderr: stdout stays byte-identical with or without
         the recorder (the lineage-smoke alias diffs it). *)
      Fmt.epr "%a@." Obs.Lineage.pp_summary lineage
    end;
    if ledger_out <> None then begin
      let det, host = Harness.Stats.ledger_metrics r in
      ledger_rows :=
        (Printf.sprintf "c=%d" e.Harness.Run.e_clients, det, host)
        :: !ledger_rows
    end
  in
  Fmt.pr "%a@." Harness.Stats.pp_result_header ();
  let exps =
    match sweep with
    | None -> [ mk clients ]
    | Some counts -> List.map mk counts
  in
  let jobs = if jobs = 0 then Orchestrate.Pool.default_jobs () else max 1 jobs in
  let elapsed = Orchestrate.Report.stopwatch () in
  let pool_domains = ref [] and pool_merge_hwm = ref 0 in
  (if jobs <= 1 then
     (* Ground-truth serial path: compute and render interleave exactly
        as they always have. *)
     List.iter (fun e -> render_point (compute_point e)) exps
   else begin
     let pool = Orchestrate.Pool.create ~jobs in
     Fun.protect
       ~finally:(fun () -> Orchestrate.Pool.shutdown pool)
       (fun () ->
         ignore
           (Orchestrate.Pool.map pool
              ~on_ready:(fun _i p -> render_point p)
              compute_point exps);
         pool_domains :=
           List.map
             (fun (d : Orchestrate.Pool.domain_stat) ->
               {
                 Obs.Engstat.dl_domain = d.ds_domain;
                 dl_tasks = d.ds_tasks;
                 dl_steals = d.ds_steals;
                 dl_busy_ns = d.ds_busy_ns;
                 dl_idle_ns = d.ds_idle_ns;
               })
             (Orchestrate.Pool.stats pool);
         pool_merge_hwm := Orchestrate.Pool.merge_high_water pool)
   end);
  Option.iter (fun path -> write path (Buffer.contents profiles)) profile_out;
  Option.iter (fun path -> write path (Buffer.contents lineages)) lineage_out;
  (match ledger_out with
  | None -> ()
  | Some path ->
    (* One entry per sweep point, single-seed sample arrays.  Points
       accumulated in render order = submission order, so the artifact
       is byte-identical whatever --jobs is. *)
    let sys_name = Harness.Run.system_name system in
    let entries =
      List.rev_map
        (fun (point, det, host) ->
          {
            Obs.Ledger.en_system = sys_name;
            en_point = point;
            en_det = List.map (fun (m, v) -> (m, [| v |])) det;
            en_host = List.map (fun (m, v) -> (m, [| v |])) host;
          })
        !ledger_rows
    in
    let config =
      Printf.sprintf
        "morty_bench system=%s setup=%s workload=%s clients=%s cores=%d \
         duration_ms=%d warmup_ms=%d"
        sys_name
        (Simnet.Latency.setup_name setup)
        (match workload with
        | `Retwis -> Printf.sprintf "retwis:keys=%d,theta=%g" keys theta
        | `Tpcc -> Printf.sprintf "tpcc:warehouses=%d" warehouses
        | `Ycsb ->
          Printf.sprintf "ycsb:keys=%d,theta=%g,read_pct=%d" keys theta read_pct
        | `Smallbank -> Printf.sprintf "smallbank:theta=%g" theta)
        (match sweep with
        | None -> string_of_int clients
        | Some counts -> String.concat "," (List.map string_of_int counts))
        cores duration_ms warmup_ms
    in
    write path (Obs.Ledger.to_json (Obs.Ledger.make ~config ~seeds:[ seed ] entries)));
  (match engine_stats_out with
  | None -> ()
  | Some path ->
    let es =
      let base = Obs.Engstat.relabel !engstat "bench" in
      if !pool_domains = [] then base
      else
        Obs.Engstat.with_domains base ~domains:!pool_domains
          ~merge_high_water:!pool_merge_hwm
    in
    (* Deterministic section on stdout (jobs-invariant, diffable); the
       wall/GC/utilization summary goes to stderr with the report. *)
    Fmt.pr "%s@." (Obs.Engstat.det_line es);
    Fmt.epr "%s@." (Obs.Engstat.host_line es);
    write path (Obs.Engstat.to_json es));
  (* Throughput report on stderr only: stdout is the diff surface. *)
  Fmt.epr "%s@."
    (Orchestrate.Report.to_string
       {
         Orchestrate.Report.o_jobs = jobs;
         o_runs = List.length exps;
         o_events = !events;
         o_wall_s = elapsed ();
       })

let cmd =
  let doc = "Run one experiment point of the Morty reproduction" in
  Cmd.v
    (Cmd.info "morty_bench" ~doc)
    Term.(
      const run $ system $ setup $ workload $ theta $ keys $ warehouses
      $ read_pct $ clients $ cores $ duration_ms $ warmup_ms $ seed $ sweep
      $ jobs $ kill_at_ms $ restart_at_ms $ victim $ partition_at_ms
      $ heal_at_ms $ partition_group $ max_staleness_us $ trace_out
      $ metrics_out $ profile_out $ lineage_out $ engine_stats_out $ ledger_out
      $ monitors $ postmortem_out)

let () = exit (Cmd.eval cmd)
