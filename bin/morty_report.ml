(* Offline ledger reporter: statistical comparison, PR-over-PR metric
   trajectories, and gate post-mortems — all from committed artifacts,
   no simulator state.

     morty_report compare BASE CUR            verdict table (exit 1 on
                                              REGRESS)
     morty_report trajectory FILE ...         markdown history tables,
                                              one per metric, across
                                              every given artifact (run
                                              ledgers and the legacy
                                              flat BENCH_*.json alike)
     morty_report explain BASE CUR SYS METRIC why one gate fired
     morty_report det FILE                    canonical deterministic
                                              projection (byte-diff
                                              surface for CI)

   Exit codes are shared with bench-check and morty_inspect: 0 ok,
   1 regression found, 2 usage, 3 missing file, 4 empty/malformed
   artifact, 5 schema-version mismatch. *)

let usage () =
  prerr_endline
    "usage: morty_report compare BASELINE.json CURRENT.json\n\
    \       morty_report trajectory FILE.json [FILE.json ...]\n\
    \       morty_report explain BASELINE.json CURRENT.json SYSTEM METRIC\n\
    \       morty_report det FILE.json\n\
     exit codes: 0 ok, 1 regression, 2 usage, 3 missing file,\n\
    \            4 empty/malformed artifact, 5 schema mismatch";
  exit 2

let fail_ledger path e =
  Printf.eprintf "morty_report: %s: %s\n" path (Obs.Ledger.error_to_string e);
  exit (Obs.Ledger.error_exit_code e)

let load path =
  match Obs.Ledger.load path with Ok l -> l | Error e -> fail_ledger path e

let host_tol =
  match Sys.getenv_opt "MORTY_BENCH_EPS_TOL" with
  | Some s -> ( try float_of_string s with Failure _ -> 0.25)
  | None -> 0.25

let compare_cmd base_path cur_path =
  let baseline = load base_path and current = load cur_path in
  let c = Obs.Ledger.compare_ledgers ~host_tol ~baseline ~current () in
  Format.printf "%a" Obs.Ledger.pp_verdict_table c;
  if c.Obs.Ledger.c_regressions > 0 || not c.Obs.Ledger.c_config_match then
    exit 1

let explain_cmd base_path cur_path sys metric =
  let baseline = load base_path and current = load cur_path in
  let c = Obs.Ledger.compare_ledgers ~host_tol ~baseline ~current () in
  match Obs.Ledger.explain_metric c ~system:sys ~metric with
  | Some s -> print_string s
  | None ->
    Printf.eprintf
      "morty_report: no metric %S for system %S in either ledger\n" metric sys;
    exit 2

let det_cmd path = print_string (Obs.Ledger.det_json (load path))

(* --- trajectory ---------------------------------------------------- *)

(* One artifact column: per system, per metric, a rendered cell and a
   sort key.  Ledger cells show mean±sd over the seed set; legacy flat
   baselines (single-seed BENCH_*.json) show the bare value. *)

type column = {
  col_name : string;  (** file basename, the table column header *)
  col_cells : ((string * string) * string) list;  (** (system, metric) -> cell *)
}

let num_cell v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let ledger_column path (l : Obs.Ledger.t) =
  let cells =
    List.concat_map
      (fun (e : Obs.Ledger.entry) ->
        List.map
          (fun (m, samples) ->
            let s = Obs.Bstats.summarize samples in
            let cell =
              if s.Obs.Bstats.n <= 1 then num_cell s.Obs.Bstats.mean
              else
                Printf.sprintf "%s ± %s" (num_cell s.Obs.Bstats.mean)
                  (num_cell s.Obs.Bstats.sd)
            in
            ((e.Obs.Ledger.en_system, m), cell))
          (e.Obs.Ledger.en_det @ e.Obs.Ledger.en_host))
      l.Obs.Ledger.entries
  in
  { col_name = Filename.basename path; col_cells = cells }

let legacy_column path (j : Obs.Ledger.J.v) =
  let cells =
    match j with
    | Obs.Ledger.J.Obj systems ->
      List.concat_map
        (fun (sys, v) ->
          match v with
          | Obs.Ledger.J.Obj metrics ->
            List.filter_map
              (fun (m, v) ->
                match v with
                | Obs.Ledger.J.Num x -> Some ((sys, m), num_cell x)
                | _ -> None)
              metrics
          | _ -> [])
        systems
    | _ -> []
  in
  if cells = [] then begin
    Printf.eprintf
      "morty_report: %s: no numeric system metrics (not a bench artifact)\n"
      path;
    exit 4
  end;
  { col_name = Filename.basename path; col_cells = cells }

let read_column path =
  match Obs.Ledger.load path with
  | Ok l -> ledger_column path l
  | Error (Obs.Ledger.Missing_file _ as e) -> fail_ledger path e
  | Error (Obs.Ledger.Schema _ as e) -> fail_ledger path e
  | Error (Obs.Ledger.Empty | Obs.Ledger.Parse _) -> (
    (* not a run ledger — try the legacy flat {"sys":{...}} shape *)
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error msg ->
      Printf.eprintf "morty_report: %s\n" msg;
      exit 3
    | "" -> fail_ledger path Obs.Ledger.Empty
    | body -> (
      match Obs.Ledger.J.parse body with
      | Ok j -> legacy_column path j
      | Error msg -> fail_ledger path (Obs.Ledger.Parse msg)))

(* Stable union in first-appearance order. *)
let union keys =
  List.fold_left
    (fun acc k -> if List.mem k acc then acc else acc @ [ k ])
    [] keys

let trajectory paths =
  let cols = List.map read_column paths in
  let metrics =
    union (List.concat_map (fun c -> List.map (fun ((_, m), _) -> m) c.col_cells) cols)
  in
  let systems =
    union (List.concat_map (fun c -> List.map (fun ((s, _), _) -> s) c.col_cells) cols)
  in
  Printf.printf "# Metric trajectory (%d artifacts)\n" (List.length cols);
  List.iter
    (fun metric ->
      let rows =
        List.filter
          (fun sys ->
            List.exists
              (fun c -> List.mem_assoc (sys, metric) c.col_cells)
              cols)
          systems
      in
      if rows <> [] then begin
        Printf.printf "\n## %s\n\n" metric;
        Printf.printf "| system |%s\n"
          (String.concat ""
             (List.map (fun c -> Printf.sprintf " %s |" c.col_name) cols));
        Printf.printf "|---|%s\n"
          (String.concat "" (List.map (fun _ -> "---|") cols));
        List.iter
          (fun sys ->
            Printf.printf "| %s |%s\n" sys
              (String.concat ""
                 (List.map
                    (fun c ->
                      match List.assoc_opt (sys, metric) c.col_cells with
                      | Some cell -> Printf.sprintf " %s |" cell
                      | None -> " — |")
                    cols)))
          rows
      end)
    metrics

let () =
  match Array.to_list Sys.argv with
  | _ :: "compare" :: base :: cur :: [] -> compare_cmd base cur
  | _ :: "explain" :: base :: cur :: sys :: metric :: [] ->
    explain_cmd base cur sys metric
  | _ :: "det" :: path :: [] -> det_cmd path
  | _ :: "trajectory" :: (_ :: _ as paths) -> trajectory paths
  | _ -> usage ()
